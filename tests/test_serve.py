"""Tests for the decomposition service (repro.serve).

The end-to-end class is the PR's acceptance test: one server, one upload,
32+ concurrent mixed requests with duplicates — every response bit-identical
to serial ``decompose()``, duplicates coalesced/memoized down to one pool
execution per unique configuration, counters consistent.
"""

from __future__ import annotations

import hashlib
import socket
import struct
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.engine import decompose
from repro.core.registry import method_names
from repro.errors import ParameterError, ServeError
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.io import to_json, write_edge_list, write_metis
from repro.graphs.weighted import WeightedCSRGraph, weights_by_name
from repro.runtime import DecompositionPool
from repro.serve import (
    ResultCache,
    ServeClient,
    canonical_cache_key,
    decode_array,
    encode_array,
    graph_digest,
    serve_background,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    V2_MAGIC,
    as_array,
    compact_arrays,
    decode_frame_body,
    decode_frame_payload,
    encode_frame,
    frame_protocol,
    parse_frame_length,
)
from repro.serve.store import GraphStore


def serial_digest(graph, beta, *, method="auto", seed=0, **options) -> str:
    """SHA-256 of a serial decomposition's arrays — the ground truth the
    served results are compared against (same hash as ServeResult)."""
    result = decompose(graph, beta, method=method, seed=seed, **options)
    decomposition = result.decomposition
    per_vertex = (
        decomposition.radius
        if isinstance(graph, WeightedCSRGraph)
        else decomposition.hops
    )
    sha = hashlib.sha256()
    sha.update(np.ascontiguousarray(decomposition.center).tobytes())
    sha.update(np.ascontiguousarray(per_vertex).tobytes())
    return sha.hexdigest()


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        message = {"op": "hello", "nested": {"x": [1, 2.5, "s", None, True]}}
        frame = encode_frame(message)
        length = parse_frame_length(frame[:4])
        assert length == len(frame) - 4
        assert decode_frame_body(frame[4:]) == message

    def test_oversized_announcement_rejected(self):
        header = struct.pack(">I", 2**31)
        with pytest.raises(ServeError, match="exceeding"):
            parse_frame_length(header)

    def test_malformed_body_rejected(self):
        with pytest.raises(ServeError, match="malformed frame"):
            decode_frame_body(b"{not json")
        with pytest.raises(ServeError, match="JSON object"):
            decode_frame_body(b"[1, 2]")

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(17, dtype=np.int64),
            np.linspace(0, 1, 9, dtype=np.float64),
            np.zeros(0, dtype=np.int64),
        ],
    )
    def test_array_codec_bit_exact(self, arr):
        decoded = decode_array(encode_array(arr))
        assert decoded.dtype == arr.dtype.newbyteorder("<")
        np.testing.assert_array_equal(decoded, arr)
        assert decoded.tobytes() == np.ascontiguousarray(arr).tobytes()

    def test_malformed_array_payload(self):
        with pytest.raises(ServeError, match="malformed array"):
            decode_array({"dtype": "<i8", "shape": [2]})  # no data

    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(17, dtype=np.int64),
            np.linspace(0, 1, 9, dtype=np.float64),
            np.zeros(0, dtype=np.int64),          # empty array
            np.zeros((0, 2), dtype=np.int64),     # empty 2-D array
            np.arange(40, dtype=np.int64)[::2],   # non-contiguous stride
            np.arange(12, dtype=np.int32).reshape(3, 4).T,  # transposed
        ],
    )
    def test_v2_frame_round_trip_bit_exact(self, arr):
        message = {"op": "x", "nested": {"arr": arr}, "stack": [arr], "n": 7}
        frame = encode_frame(message, 2)
        body = frame[4:]
        assert frame_protocol(body) == 2
        assert body[:4] == V2_MAGIC
        decoded = decode_frame_payload(body)
        assert decoded["n"] == 7
        for got in (decoded["nested"]["arr"], decoded["stack"][0]):
            assert got.dtype == arr.dtype.newbyteorder("<")
            assert got.shape == arr.shape
            np.testing.assert_array_equal(got, arr)
            assert got.tobytes() == np.ascontiguousarray(arr).tobytes()

    def test_v2_arrays_are_zero_copy_views(self):
        arr = np.arange(32, dtype=np.int64)
        body = encode_frame({"a": arr}, 2)[4:]
        view = decode_frame_payload(body)["a"]
        # The view aliases the frame body (no copy), hence is read-only.
        assert view.base is not None
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 99

    def test_v1_bodies_sniffed_and_arrays_left_encoded(self):
        body = encode_frame({"a": np.arange(3, dtype=np.int64)}, 1)[4:]
        assert frame_protocol(body) == 1
        decoded = decode_frame_payload(body)
        assert isinstance(decoded["a"], dict)  # base64 object, not ndarray
        np.testing.assert_array_equal(
            as_array(decoded["a"]), np.arange(3)
        )

    def test_encode_array_non_contiguous_input(self):
        arr = np.arange(30, dtype=np.int64)[::3]
        decoded = decode_array(encode_array(arr))
        np.testing.assert_array_equal(decoded, arr)

    def test_unknown_protocol_generation_rejected(self):
        with pytest.raises(ServeError, match="unknown protocol"):
            encode_frame({"op": "hello"}, 3)

    def test_oversize_frame_fails_fast_both_codecs(self, monkeypatch):
        import repro.serve.protocol as protocol

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        big = {"op": "upload", "payload": "x" * 256}
        for generation in (1, 2):
            with pytest.raises(ServeError, match="exceeds the protocol"):
                encode_frame(big, generation)
        # The receive side enforces the same bound on the announcement.
        with pytest.raises(ServeError, match="exceeding"):
            parse_frame_length(struct.pack(">I", 65))

    def test_malformed_v2_frames_rejected(self):
        with pytest.raises(ServeError, match="truncated v2 frame"):
            decode_frame_payload(V2_MAGIC + b"\x00")
        with pytest.raises(ServeError, match="header length"):
            decode_frame_payload(V2_MAGIC + struct.pack(">I", 999) + b"{}")
        # A descriptor pointing outside the tail must not be dereferenced.
        frame = encode_frame({"a": np.arange(4, dtype=np.int64)}, 2)
        body = bytearray(frame[4:])
        tampered = body.replace(b'"__nd__":[0,32]', b'"__nd__":[0,99]')
        with pytest.raises(ServeError, match="malformed array"):
            decode_frame_payload(bytes(tampered))

    def test_compact_arrays_downcasts_transport_only(self):
        arrays = {
            "small": np.arange(100, dtype=np.int64),
            "wide": np.array([0, 2**40], dtype=np.int64),
            "weights": np.linspace(0.5, 2.0, 8, dtype=np.float64),
        }
        compact = compact_arrays(arrays)
        assert compact["small"].dtype == np.int16
        assert compact["wide"].dtype == np.int64  # does not fit narrower
        assert compact["weights"].dtype == np.float64  # floats untouched
        np.testing.assert_array_equal(compact["small"], arrays["small"])

    def test_cache_key_canonicalisation(self):
        a = canonical_cache_key("d", 0.2, "bfs", 3, {"x": 1, "y": 2})
        b = canonical_cache_key("d", 0.2, "bfs", 3, {"y": 2, "x": 1})
        assert a == b
        assert a != canonical_cache_key("d", 0.2, "bfs", 4, {"x": 1, "y": 2})
        assert a != canonical_cache_key(
            "d", 0.2, "bfs", 3, {"x": 1, "y": 2}, validate=True
        )


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(1000)
        assert cache.get("k") is None
        assert cache.put("k", "value", 10)
        assert cache.get("k") == "value"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["bytes"] == 10

    def test_lru_eviction_by_bytes(self):
        cache = ResultCache(100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        assert cache.get("a") == "A"  # refresh a: b is now LRU
        cache.put("c", "C", 40)  # must evict b
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("c") == "C"
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] <= 100

    def test_oversize_rejected_not_flushed(self):
        cache = ResultCache(50)
        cache.put("small", "s", 10)
        assert not cache.put("big", "B", 51)
        assert cache.get("small") == "s"  # survived
        assert cache.stats()["oversize"] == 1

    def test_replace_same_key_adjusts_bytes(self):
        cache = ResultCache(100)
        cache.put("k", "v1", 60)
        cache.put("k", "v2", 30)
        assert cache.stats()["bytes"] == 30
        assert cache.get("k") == "v2"

    def test_clear_keeps_counters(self):
        cache = ResultCache(100)
        cache.put("k", "v", 10)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_rejects_negative_budget(self):
        with pytest.raises(ParameterError, match="max_bytes"):
            ResultCache(-1)


# ---------------------------------------------------------------------------
# graph store
# ---------------------------------------------------------------------------
class TestGraphStore:
    def test_digest_is_content_addressed(self):
        a = grid_2d(5, 5)
        b = grid_2d(5, 5)
        assert graph_digest(a) == graph_digest(b)
        assert graph_digest(a) != graph_digest(grid_2d(5, 6))

    def test_weighted_topology_gets_distinct_digest(self):
        g = grid_2d(4, 4)
        w = weights_by_name(g, "unit:1.0")
        assert graph_digest(g) != graph_digest(w)
        w2 = weights_by_name(g, "unit:2.0")
        assert graph_digest(w) != graph_digest(w2)

    def test_put_dedups_and_registers_once(self):
        with DecompositionPool(max_workers=1) as pool:
            store = GraphStore(pool)
            g = grid_2d(6, 6)
            digest, known = store.put(g)
            assert not known
            digest2, known2 = store.put(grid_2d(6, 6))
            assert digest2 == digest and known2
            assert pool.graph_keys == (digest,)
            assert store.get(digest) is g
            assert digest in store and len(store) == 1
            stats = store.stats()
            assert stats["uploads"] == 2 and stats["dedup_hits"] == 1

    def test_unknown_digest(self):
        with DecompositionPool(max_workers=1) as pool:
            store = GraphStore(pool)
            with pytest.raises(ParameterError, match="unknown graph digest"):
                store.get("ffff")

    def test_discard_unregisters(self):
        with DecompositionPool(max_workers=1) as pool:
            store = GraphStore(pool)
            digest, _ = store.put(grid_2d(4, 4))
            store.discard(digest)
            assert digest not in store
            assert pool.graph_keys == ()


# ---------------------------------------------------------------------------
# end-to-end service
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def running_server():
    """One server + graph for the whole module — server startup is the
    expensive part, and the tests exercise disjoint (beta, seed) regions."""
    graph = grid_2d(14, 14)
    with serve_background(max_workers=2) as server:
        with ServeClient(*server.address) as client:
            digest = client.upload(graph)
        yield server, graph, digest


class TestServeEndToEnd:
    def test_acceptance_concurrent_mixed_duplicates(self, running_server):
        """The PR acceptance run: >= 32 concurrent requests, mixed
        beta/method/seed with duplicates, against one uploaded graph."""
        server, graph, digest = running_server
        host, port = server.address

        configs = [
            (beta, method, seed)
            for beta in (0.22, 0.37)
            for method in ("bfs", "sequential")
            for seed in (11, 12, 13)
        ]  # 12 unique configurations
        requests = configs * 3  # 36 requests, every config duplicated
        assert len(requests) >= 32

        with ServeClient(host, port) as probe:
            before = probe.stats()["server"]

        def one_request(config):
            beta, method, seed = config
            with ServeClient(host, port) as client:
                return client.decompose(
                    digest, beta, method=method, seed=seed
                )

        with ThreadPoolExecutor(max_workers=12) as pool:
            results = list(pool.map(one_request, requests))

        # Every response is bit-identical to the serial engine.
        for config, result in zip(requests, results):
            beta, method, seed = config
            assert result.result_digest() == serial_digest(
                graph, beta, method=method, seed=seed
            )

        with ServeClient(host, port) as probe:
            after = probe.stats()
        executions = (
            after["server"]["pool_executions"]
            - before["pool_executions"]
        )
        served = (
            after["server"]["decompose_requests"]
            - before["decompose_requests"]
        )
        coalesced = after["server"]["coalesced"] - before["coalesced"]
        # Duplicates must not reach the pool: one execution per unique
        # configuration, the rest answered by coalescing or the cache.
        assert executions == len(configs)
        assert served == len(requests)
        reused = sum(1 for r in results if r.cached or r.coalesced)
        assert reused == len(requests) - len(configs)
        assert coalesced == sum(1 for r in results if r.coalesced)
        assert after["cache"]["entries"] >= len(configs)

    def test_warm_hit_byte_identical_all_methods(self, running_server):
        """Cache correctness: a warm hit is digest-identical to the cold
        miss (and to serial) for every registered method — the memoization
        license the conformance suite grants."""
        server, graph, digest = running_server
        host, port = server.address
        with ServeClient(host, port) as client:
            for method in method_names("unweighted"):
                cold = client.decompose(digest, 0.3, method=method, seed=41)
                warm = client.decompose(digest, 0.3, method=method, seed=41)
                assert not cold.cached
                assert warm.cached
                assert (
                    cold.result_digest()
                    == warm.result_digest()
                    == serial_digest(graph, 0.3, method=method, seed=41)
                ), f"method {method}"

    def test_weighted_methods_roundtrip_and_memoize(self, running_server):
        server, _, _ = running_server
        host, port = server.address
        weighted = weights_by_name(
            erdos_renyi(40, 0.2, seed=5), "uniform:0.5,2.0", seed=5
        )
        with ServeClient(host, port) as client:
            upload = client.upload_text(to_json(weighted), format="json")
            assert upload["weighted"]
            wdigest = upload["digest"]
            for method in method_names("weighted"):
                cold = client.decompose(wdigest, 0.4, method=method, seed=8)
                warm = client.decompose(wdigest, 0.4, method=method, seed=8)
                assert warm.cached
                assert cold.kind == "weighted"
                np.testing.assert_array_equal(cold.radius, warm.radius)
                assert (
                    cold.result_digest()
                    == serial_digest(weighted, 0.4, method=method, seed=8)
                ), f"method {method}"

    def test_auto_and_explicit_method_share_cache_entry(self, running_server):
        """'auto' resolves to the registry name before the cache key is
        built, so auto and the explicit default hit the same entry."""
        server, _, digest = running_server
        host, port = server.address
        with ServeClient(host, port) as client:
            first = client.decompose(digest, 0.19, method="auto", seed=77)
            second = client.decompose(digest, 0.19, method="bfs", seed=77)
            assert not first.cached
            assert second.cached

    def test_validate_flag_reports_invariants(self, running_server):
        server, _, digest = running_server
        host, port = server.address
        with ServeClient(host, port) as client:
            result = client.decompose(
                digest, 0.28, seed=91, validate=True
            )
            assert result.summary["invariants_ok"] is True

    def test_upload_formats_sniffed(self, running_server, tmp_path):
        server, _, _ = running_server
        host, port = server.address
        graph = erdos_renyi(30, 0.15, seed=9)
        edges_path = tmp_path / "g.edges"
        metis_path = tmp_path / "g.metis"
        write_edge_list(graph, edges_path)
        write_metis(graph, metis_path)
        with ServeClient(host, port) as client:
            digest_json = client.upload(graph)
            for path in (edges_path, metis_path):
                response = client.upload_file(path)
                # Same content => same digest, regardless of wire format.
                assert response["digest"] == digest_json
                assert response["known"]
                assert response["num_edges"] == graph.num_edges

    def test_hello_advertises_registry(self, running_server):
        server, _, digest = running_server
        with ServeClient(*server.address) as client:
            hello = client.hello()
        assert hello["protocol"] >= 1
        names = {m["name"] for m in hello["methods"]}
        assert set(method_names()) == names
        assert hello["default_methods"]["unweighted"] in names
        assert "edges" in hello["formats"]
        assert digest in hello["graphs"]

    def test_error_responses(self, running_server):
        server, _, digest = running_server
        with ServeClient(*server.address) as client:
            with pytest.raises(ServeError, match="unknown graph digest"):
                client.decompose("0" * 64, 0.3)
            with pytest.raises(ServeError, match="beta"):
                client._call({"op": "decompose", "digest": digest})
            with pytest.raises(ServeError, match="unknown op"):
                client._call({"op": "warp"})
            with pytest.raises(ServeError, match="seed"):
                client._call(
                    {"op": "decompose", "digest": digest, "beta": 0.3,
                     "seed": "zero"}
                )
            with pytest.raises(ServeError, match="unknown method"):
                client.decompose(digest, 0.3, method="bogus")
            with pytest.raises(ServeError, match="payload"):
                client._call({"op": "upload"})
            # The connection survives error responses.
            assert client.decompose(digest, 0.3, seed=1).num_pieces >= 1

    def test_oversized_frame_announcement_gets_error_frame(
        self, running_server
    ):
        """A header announcing a too-large frame must be answered with an
        ok:false frame before the server drops the stream — not an abrupt
        close plus an unhandled task exception."""
        from repro.serve.protocol import MAX_FRAME_BYTES

        server, _, _ = running_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            from repro.serve.protocol import read_frame_blocking

            response = read_frame_blocking(sock)
            assert response is not None
            assert response["ok"] is False
            assert "maximum" in response["message"]
            # The stream is then closed server-side.
            assert read_frame_blocking(sock) is None
        finally:
            sock.close()

    def test_kind_gated_accessors(self, running_server):
        server, _, digest = running_server
        with ServeClient(*server.address) as client:
            result = client.decompose(digest, 0.3, seed=2)
        assert result.hops is result.per_vertex
        with pytest.raises(ParameterError, match="weighted"):
            result.radius


class TestServerLifecycle:
    def test_shutdown_op_stops_server(self):
        with serve_background(max_workers=1) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                assert client.shutdown()["stopping"]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    ServeClient(
                        host, port, timeout=1.0, connect_window=0
                    ).close()
                except ServeError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("server kept accepting after shutdown")

    def test_idle_ttl_shuts_down(self):
        with serve_background(max_workers=1, idle_ttl=0.3) as server:
            host, port = server.address
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    ServeClient(
                        host, port, timeout=1.0, connect_window=0
                    ).close()
                except ServeError:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("idle server did not hit its TTL")

    def test_preloaded_graphs_are_resident(self):
        graph = path_graph(40)
        with serve_background(graph, max_workers=1) as server:
            assert server.preloaded == (graph_digest(graph),)
            with ServeClient(*server.address) as client:
                result = client.decompose(server.preloaded[0], 0.3, seed=6)
                assert result.result_digest() == serial_digest(
                    graph, 0.3, seed=6
                )

    def test_cache_disabled_still_coalesces_nothing_breaks(self):
        graph = grid_2d(6, 6)
        with serve_background(graph, max_workers=1, cache_bytes=0) as server:
            with ServeClient(*server.address) as client:
                digest = server.preloaded[0]
                first = client.decompose(digest, 0.3, seed=3)
                second = client.decompose(digest, 0.3, seed=3)
                assert not second.cached  # nothing fits in a 0-byte cache
                assert first.result_digest() == second.result_digest()

    def test_client_connect_refused(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # port is now (very likely) closed
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient("127.0.0.1", port, timeout=2.0, connect_window=0)

    def test_client_closes_on_transport_failure(self):
        """A mid-frame failure desynchronizes the stream (no request ids),
        so the client must close rather than risk answering a later call
        with an earlier request's response."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            client = ServeClient(*listener.getsockname(), timeout=5.0)
            conn, _ = listener.accept()
            conn.sendall(b"\x00\x00")  # half a length prefix...
            conn.close()  # ...then hang up mid-frame
            with pytest.raises(ServeError, match="connection to server"):
                client.hello()
            assert client.closed
            with pytest.raises(ServeError, match="closed"):
                client.hello()
        finally:
            listener.close()

    def test_ttl_counts_inflight_work_as_activity(self):
        """The idle watchdog must not kill a server that is mid-execution
        with no frames arriving."""
        with serve_background(max_workers=1, idle_ttl=0.4) as server:
            host, port = server.address
            # Simulate a long-running decomposition: a populated in-flight
            # table is exactly what the watchdog sees during one.
            server._inflight["fake-key"] = object()
            time.sleep(1.2)  # several TTL periods
            ServeClient(host, port, timeout=2.0).close()  # still serving
            server._inflight.clear()
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    ServeClient(
                        host, port, timeout=1.0, connect_window=0
                    ).close()
                except ServeError:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("drained server did not hit its TTL")


class TestAsyncClientTimers:
    """Teardown must disarm per-request timeout timers: a handle surviving
    ``close()`` fires ``_expire`` against a dead connection and keeps the
    loop alive until the latest deadline."""

    def test_close_cancels_armed_timeout_timers(self):
        import asyncio

        from repro.serve.aio_client import AsyncServeClient

        async def hang_after_hello(reader, writer):
            # Answer the v1 hello handshake, then go silent forever.
            header = await reader.readexactly(4)
            await reader.readexactly(parse_frame_length(header))
            writer.write(encode_frame({"ok": True, "protocol": 1}, 1))
            await writer.drain()
            while await reader.read(65536):
                pass

        async def run():
            server = await asyncio.start_server(
                hang_after_hello, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            client = AsyncServeClient(host, port, timeout=60.0, pool_size=1)
            task = asyncio.create_task(client.call({"op": "stats"}))
            for _ in range(500):
                if client._conns and client._conns[0]._timers:
                    break
                await asyncio.sleep(0.01)
            else:
                pytest.fail("request never armed its timeout timer")
            conn = client._conns[0]
            handles = list(conn._timers.values())
            assert handles and not any(h.cancelled() for h in handles)

            await client.aclose()

            # The armed timer is gone with the connection — nothing left
            # to fire `_expire` against the torn-down stream, and the
            # loop is not pinned open for the remaining 60s.
            assert conn._timers == {}
            assert all(h.cancelled() for h in handles)
            with pytest.raises(ServeError, match="connection closed"):
                await task
            server.close()
            await server.wait_closed()

        asyncio.run(run())

    def test_server_disconnect_cancels_timers_too(self):
        import asyncio

        from repro.serve.aio_client import AsyncServeClient

        async def hello_then_drop(reader, writer):
            header = await reader.readexactly(4)
            await reader.readexactly(parse_frame_length(header))
            writer.write(encode_frame({"ok": True, "protocol": 1}, 1))
            await writer.drain()
            # Wait for one more request, then drop the connection.
            await reader.readexactly(4)
            writer.close()

        async def run():
            server = await asyncio.start_server(
                hello_then_drop, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            client = AsyncServeClient(host, port, timeout=60.0, pool_size=1)
            with pytest.raises(ServeError, match="closed|lost"):
                await client.call({"op": "stats"})
            assert client._conns[0]._timers == {}
            await client.aclose()
            server.close()
            await server.wait_closed()

        asyncio.run(run())


class TestProtocolNegotiation:
    """v1 <-> v2 interop: the hello handshake picks the generation, and a
    v1-only client keeps working against a v2 server unchanged."""

    def test_v1_client_round_trips_against_v2_server(self, running_server):
        server, _, _ = running_server
        graph = erdos_renyi(50, 0.12, seed=91)
        with ServeClient(*server.address, max_protocol=1) as client:
            hello = client.hello()
            assert hello["protocol"] >= 2  # the server speaks v2...
            assert client.protocol == 1  # ...but honours the v1 cap
            digest = client.upload(graph)
            assert digest == graph_digest(graph)
            result = client.decompose(digest, 0.3, seed=4)
            assert result.result_digest() == serial_digest(graph, 0.3, seed=4)

    def test_default_client_negotiates_v2(self, running_server):
        server, _, digest = running_server
        with ServeClient(*server.address) as client:
            hello = client.hello()
            assert 1 in hello["protocols"] and 2 in hello["protocols"]
            assert client.protocol == 2
            result = client.decompose(digest, 0.31, seed=9)
        with ServeClient(*server.address, max_protocol=1) as v1:
            legacy = v1.decompose(digest, 0.31, seed=9)
        # Same cached decomposition, regardless of wire generation.
        assert result.result_digest() == legacy.result_digest()

    def test_binary_and_text_uploads_share_digest(self, running_server):
        server, _, _ = running_server
        graph = erdos_renyi(40, 0.15, seed=92)
        with ServeClient(*server.address, max_protocol=1) as v1:
            first = v1.upload_graph(graph)
        with ServeClient(*server.address) as v2:
            second = v2.upload_graph(graph)
        assert first["digest"] == second["digest"]
        assert first["known"] is False and second["known"] is True

    @pytest.mark.parametrize("max_protocol", [1, 2])
    def test_degenerate_graph_uploads(self, running_server, max_protocol):
        from repro.graphs.csr import CSRGraph

        server, _, _ = running_server
        empty = CSRGraph(
            np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )  # 0 nodes, 0 edges
        lone = path_graph(1)  # 1 node, 0 edges
        with ServeClient(
            *server.address, max_protocol=max_protocol
        ) as client:
            for graph, vertices in ((empty, 0), (lone, 1)):
                response = client.upload_graph(graph)
                assert response["digest"] == graph_digest(graph)
                assert response["num_vertices"] == vertices
                assert response["num_edges"] == 0
