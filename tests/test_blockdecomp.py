"""Tests for Linial–Saks block decompositions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.sequential import eccentricity
from repro.core.theory import blockdecomp_iteration_bound
from repro.blockdecomp.linial_saks import block_decomposition
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.ops import connected_components, induced_subgraph


class TestBlockDecomposition:
    def test_every_edge_in_exactly_one_block(self, medium_grid):
        bd = block_decomposition(medium_grid, seed=0)
        assert bd.edge_block.shape[0] == medium_grid.num_edges
        assert np.all(bd.edge_block >= 0)
        assert bd.edge_block.max() == bd.num_blocks - 1
        assert bd.block_edge_counts().sum() == medium_grid.num_edges

    def test_block_count_within_log_bound(self):
        for seed in range(3):
            g = grid_2d(20, 20)
            bd = block_decomposition(g, seed=seed)
            # Expected halving per iteration; allow slack factor 2 on the
            # log₂ m bound since each round halves only in expectation.
            assert bd.num_blocks <= 2 * blockdecomp_iteration_bound(
                g.num_edges
            )

    def test_block_edges_decrease_geometrically_overall(self, medium_grid):
        bd = block_decomposition(medium_grid, seed=1)
        counts = bd.block_edge_counts()
        # First block holds the majority; later blocks shrink overall.
        assert counts[0] > counts[-1]
        assert counts[0] >= 0.3 * medium_grid.num_edges

    def test_block_pieces_have_small_diameter(self):
        g = grid_2d(15, 15)
        bd = block_decomposition(g, seed=2)
        certificate = max(bd.block_radii)
        for b in range(bd.num_blocks):
            sub_edges = bd.block_subgraph(b)
            labels = connected_components(sub_edges)
            for piece in range(int(labels.max()) + 1):
                members = np.flatnonzero(labels == piece)
                if members.size <= 1:
                    continue
                piece_graph = induced_subgraph(sub_edges, members).graph
                ecc = eccentricity(piece_graph, 0)
                assert ecc <= 2 * certificate

    def test_block_subgraph_roundtrip(self, small_grid):
        bd = block_decomposition(small_grid, seed=3)
        total = sum(
            bd.block_subgraph(b).num_edges for b in range(bd.num_blocks)
        )
        assert total == small_grid.num_edges

    def test_path_graph(self):
        g = path_graph(100)
        bd = block_decomposition(g, seed=4)
        assert bd.block_edge_counts().sum() == 99

    def test_edgeless_graph(self):
        bd = block_decomposition(from_edges(5, []), seed=5)
        assert bd.num_blocks == 0
        assert bd.edge_block.shape[0] == 0

    def test_bad_beta(self, small_grid):
        with pytest.raises(ParameterError):
            block_decomposition(small_grid, beta=0.0)

    def test_block_index_out_of_range(self, small_grid):
        bd = block_decomposition(small_grid, seed=6)
        with pytest.raises(ParameterError):
            bd.block_subgraph(bd.num_blocks)

    def test_radii_recorded_per_block(self, small_grid):
        bd = block_decomposition(small_grid, seed=7)
        assert len(bd.block_radii) == bd.num_blocks
        assert all(r >= 0 for r in bd.block_radii)
