"""Unit tests for the CSR graph structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import grid_2d, path_graph


class TestConstruction:
    def test_simple_triangle(self):
        g = from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.num_arcs == 6

    def test_empty_graph_allowed(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = from_edges(5, [(0, 1)])
        assert g.degree(4) == 0
        assert g.num_edges == 1

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(GraphError, match="indptr\\[0\\]"):
            CSRGraph(np.asarray([1, 2]), np.asarray([0, 0]))

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(GraphError, match="must equal len"):
            CSRGraph(np.asarray([0, 1]), np.asarray([0, 0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(np.asarray([0, 2, 1, 2]), np.asarray([1, 2]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(GraphError, match="out-of-range"):
            CSRGraph(np.asarray([0, 1, 2]), np.asarray([0, 5]))

    def test_rejects_asymmetric_adjacency(self):
        # arc 0->1 present, 1->0 absent (replaced by 1->2 etc. mismatch)
        with pytest.raises(GraphError, match="not symmetric"):
            CSRGraph(np.asarray([0, 1, 2, 2]), np.asarray([1, 2]))

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            from_edges(2, [(0, 0)])

    def test_rejects_odd_arcs(self):
        with pytest.raises(GraphError, match="odd"):
            CSRGraph(np.asarray([0, 1]), np.asarray([0]))

    def test_arrays_are_read_only(self):
        g = from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.indptr[0] = 5
        with pytest.raises(ValueError):
            g.indices[0] = 2


class TestAccessors:
    def test_degrees_match_neighbors(self):
        g = grid_2d(4, 4)
        for v in range(g.num_vertices):
            assert g.degree(v) == g.neighbors(v).shape[0]
        np.testing.assert_array_equal(
            g.degrees(), [g.degree(v) for v in range(g.num_vertices)]
        )

    def test_grid_corner_degree(self):
        g = grid_2d(3, 3)
        assert g.degree(0) == 2  # corner
        assert g.degree(4) == 4  # center

    def test_neighbors_sorted(self):
        g = grid_2d(5, 5)
        for v in range(g.num_vertices):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_has_edge(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(2, 3)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)
        assert not g.has_edge(0, 99)

    def test_edge_array_canonical(self):
        g = from_edges(4, [(3, 2), (1, 0), (0, 2)])
        edges = g.edge_array()
        np.testing.assert_array_equal(edges, [[0, 1], [0, 2], [2, 3]])
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_iter_edges_matches_edge_array(self):
        g = grid_2d(3, 4)
        assert list(g.iter_edges()) == [tuple(e) for e in g.edge_array()]

    def test_arc_sources_aligned_with_indices(self):
        g = from_edges(3, [(0, 1), (1, 2)])
        src = g.arc_sources()
        assert src.shape[0] == g.num_arcs
        # vertex 1 has two arcs
        assert (src == 1).sum() == 2


class TestDunder:
    def test_equality_and_hash(self):
        g1 = from_edges(3, [(0, 1), (1, 2)])
        g2 = from_edges(3, [(1, 2), (0, 1)])
        g3 = from_edges(3, [(0, 1)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3
        assert g1 != "not a graph"

    def test_repr_contains_counts(self):
        g = path_graph(5)
        assert "n=5" in repr(g) and "m=4" in repr(g)

    def test_memory_bytes_positive(self):
        assert grid_2d(3, 3).memory_bytes() > 0
