"""Hypothesis property tests for the application layers.

Universally quantified over random (connected) graphs:

- spanners never disconnect and respect the 4r+1 certificate;
- block decompositions partition the edge set exactly;
- AKPW forests span every component with graph edges only;
- the tree preconditioner equals the dense pseudo-inverse;
- oracle estimates never undershoot true distances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.sequential import multi_source_bfs
from repro.blockdecomp.linial_saks import block_decomposition
from repro.core.ldd_bfs import partition_bfs
from repro.lowstretch.akpw import akpw_spanning_tree
from repro.oracles.cluster_oracle import ClusterDistanceOracle
from repro.solvers.laplacian import graph_laplacian
from repro.solvers.tree_precond import TreePreconditioner
from repro.spanners.cluster_spanner import spanner_from_decomposition
from repro.trees.structure import RootedForest

from tests.conftest import connected_graphs, random_graphs

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(connected_graphs(max_vertices=16), st.integers(0, 10_000))
def test_spanner_certificate_universal(graph, seed):
    decomposition, _ = partition_bfs(graph, 0.4, seed=seed)
    res = spanner_from_decomposition(decomposition)
    # Every original edge's endpoints lie within the bound in the spanner.
    for u, v in graph.iter_edges():
        d = multi_source_bfs(res.spanner, np.asarray([u])).dist[v]
        assert 0 <= d <= res.stretch_bound


@COMMON
@given(random_graphs(max_vertices=16, require_edges=True), st.integers(0, 10_000))
def test_block_decomposition_partitions_edges(graph, seed):
    bd = block_decomposition(graph, seed=seed)
    assert np.all(bd.edge_block >= 0)
    assert bd.block_edge_counts().sum() == graph.num_edges
    total = sum(
        bd.block_subgraph(b).num_edges for b in range(bd.num_blocks)
    )
    assert total == graph.num_edges


@COMMON
@given(random_graphs(max_vertices=16), st.integers(0, 10_000))
def test_akpw_spans_components_with_graph_edges(graph, seed):
    res = akpw_spanning_tree(graph, beta=0.5, seed=seed)
    forest = res.forest
    # Edge count = n - #components, every edge is a graph edge.
    from repro.graphs.ops import num_components

    assert forest.num_edges() == graph.num_vertices - num_components(graph)
    for v in np.flatnonzero(forest.parent != -1):
        assert graph.has_edge(int(v), int(forest.parent[v]))


@COMMON
@given(st.integers(2, 24), st.integers(0, 10_000))
def test_tree_preconditioner_equals_pinv_on_random_trees(n, seed):
    rng = np.random.default_rng(seed)
    parent = np.full(n, -1, dtype=np.int64)
    weight = np.zeros(n, dtype=np.float64)
    for v in range(1, n):
        parent[v] = int(rng.integers(v))
        weight[v] = float(rng.uniform(0.5, 3.0))
    forest = RootedForest(parent=parent, edge_weight=weight)
    lap = graph_laplacian(
        _weighted_tree_graph(n, parent, weight)
    ).toarray()
    b = rng.standard_normal(n)
    b -= b.mean()
    tp = TreePreconditioner(forest)
    np.testing.assert_allclose(tp.apply(b), np.linalg.pinv(lap) @ b, atol=1e-7)


def _weighted_tree_graph(n, parent, weight):
    from repro.graphs.weighted import weighted_from_edges

    child = np.flatnonzero(parent != -1)
    edges = np.stack([child, parent[child]], axis=1)
    return weighted_from_edges(n, edges, weight[child])


@COMMON
@given(connected_graphs(max_vertices=14), st.integers(0, 10_000))
def test_oracle_never_underestimates_universal(graph, seed):
    decomposition, _ = partition_bfs(graph, 0.4, seed=seed)
    oracle = ClusterDistanceOracle(decomposition)
    n = graph.num_vertices
    for s in range(n):
        exact = multi_source_bfs(graph, np.asarray([s])).dist
        est = oracle.estimate(np.full(n, s), np.arange(n))
        assert np.all(est >= exact - 1e-9)
