"""Tests for benchmarks/compare_baselines.py (the CI trajectory gate).

The script is not a package module, so it is imported straight off the
benchmarks directory.  Directionality is the load-bearing part: a metric's
suffix decides whether a delta prints as better or worse, and only
*structural* regressions (a baseline metric that vanished) can fail the
run — value deltas are host-dependent and stay warn-only.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import compare_baselines as cb  # noqa: E402


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "baselines", tmp_path / "current"


class TestDirection:
    @pytest.mark.parametrize("metric,sign", [
        ("requests_per_s", +1),
        ("shared_speedup", +1),
        ("wall_time_s", -1),
        ("latency_ms", -1),
        ("resident_bytes", -1),
        ("rounds", 0),           # unknown suffix: warn-only, no verdict
        ("overhead_pct", 0),
    ])
    def test_suffix_table(self, metric, sign):
        assert cb._direction(metric) == sign


class TestNumericLeaves:
    def test_flattens_nested_payloads(self):
        doc = {
            "rt": {"shared": {"req_per_s": 10.0}, "requests": 32},
            "meta": {"smoke": True},  # bools are flags, not metrics
            "note": "text is ignored",
        }
        leaves = cb._numeric_leaves(doc)
        assert leaves == {
            "rt.shared.req_per_s": 10.0,
            "rt.requests": 32.0,
        }

    def test_empty_doc(self):
        assert cb._numeric_leaves({}) == {}


class TestCompare:
    def test_matching_files_compare_all_metrics(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"req_per_s": 100.0}})
        _write(current, "BENCH_rt.json", {"rt": {"req_per_s": 150.0}})
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (1, 0)
        out = capsys.readouterr().out
        assert "+50.0% (better)" in out

    def test_regression_prints_worse(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"wall_time_s": 1.0}})
        _write(current, "BENCH_rt.json", {"rt": {"wall_time_s": 2.0}})
        cb.compare(baseline, current)
        assert "(worse)" in capsys.readouterr().out

    def test_unknown_suffix_has_no_verdict(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"rounds": 10}})
        _write(current, "BENCH_rt.json", {"rt": {"rounds": 20}})
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (1, 0)
        out = capsys.readouterr().out
        assert "(better)" not in out and "(worse)" not in out

    def test_missing_metric_counted(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json",
               {"rt": {"req_per_s": 100.0, "wall_time_s": 1.0}})
        _write(current, "BENCH_rt.json", {"rt": {"req_per_s": 90.0}})
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (1, 1)
        assert "MISSING" in capsys.readouterr().out

    def test_missing_file_counts_every_baseline_metric(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json",
               {"rt": {"req_per_s": 100.0, "wall_time_s": 1.0}})
        current.mkdir()
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (0, 2)
        assert "MISSING: no current BENCH_rt.json" in capsys.readouterr().out

    def test_new_metric_and_new_file_are_informational(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"req_per_s": 100.0}})
        _write(current, "BENCH_rt.json",
               {"rt": {"req_per_s": 100.0, "extra_per_s": 5.0}})
        _write(current, "BENCH_obs.json", {"obs": {"overhead_pct": 1.0}})
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (1, 0)
        out = capsys.readouterr().out
        assert "NEW" in out
        assert "NEW FILE" in out and "BENCH_obs.json" in out

    def test_no_baselines_is_a_noop(self, dirs, capsys):
        baseline, current = dirs
        baseline.mkdir()
        current.mkdir()
        assert cb.compare(baseline, current) == (0, 0)
        assert "nothing to compare" in capsys.readouterr().out

    def test_invalid_json_is_skipped_with_warning(self, dirs, capsys):
        baseline, current = dirs
        baseline.mkdir()
        (baseline / "BENCH_bad.json").write_text("{not json")
        _write(baseline, "BENCH_rt.json", {"rt": {"req_per_s": 1.0}})
        _write(current, "BENCH_rt.json", {"rt": {"req_per_s": 1.0}})
        compared, missing = cb.compare(baseline, current)
        assert (compared, missing) == (1, 0)
        assert "WARN" in capsys.readouterr().out


class TestMain:
    def _argv(self, dirs):
        baseline, current = dirs
        return ["--baseline", str(baseline), "--current", str(current)]

    def test_exit_zero_on_clean_compare(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"req_per_s": 1.0}})
        _write(current, "BENCH_rt.json", {"rt": {"req_per_s": 2.0}})
        assert cb.main(self._argv(dirs)) == 0

    def test_value_regressions_never_fail(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"wall_time_s": 1.0}})
        _write(current, "BENCH_rt.json", {"rt": {"wall_time_s": 100.0}})
        assert cb.main(self._argv(dirs) + ["--fail-on-missing"]) == 0

    def test_fail_on_missing_gates_structural_loss(self, dirs, capsys):
        baseline, current = dirs
        _write(baseline, "BENCH_rt.json", {"rt": {"req_per_s": 1.0}})
        current.mkdir()
        assert cb.main(self._argv(dirs)) == 0  # warn-only by default
        assert cb.main(self._argv(dirs) + ["--fail-on-missing"]) == 1
        assert "FAIL" in capsys.readouterr().err
