"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestDecompose:
    def test_human_output(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "grid:10x10",
                "--beta",
                "0.3",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cut_fraction" in out and "num_pieces" in out

    def test_json_output(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "path:50",
                "--beta",
                "0.2",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n"] == 50 and doc["m"] == 49
        assert doc["method"] == "bfs-fractional"

    def test_validate_flag(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "cycle:20",
                "--beta",
                "0.4",
                "--validate",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["invariants_ok"] is True

    def test_alternative_method(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "grid:8x8",
                "--beta",
                "0.3",
                "--method",
                "sequential",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "sequential-ball-growing"


class TestRender:
    def test_writes_ppm(self, tmp_path, capsys):
        out_file = tmp_path / "fig.ppm"
        code = main(
            [
                "render",
                "--rows",
                "20",
                "--cols",
                "20",
                "--beta",
                "0.2",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        assert out_file.read_bytes().startswith(b"P6")
        assert "pieces" in capsys.readouterr().out

    def test_ascii_flag(self, tmp_path, capsys):
        code = main(
            [
                "render",
                "--rows",
                "12",
                "--cols",
                "12",
                "--beta",
                "0.3",
                "--out",
                str(tmp_path / "a.ppm"),
                "--ascii",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5


class TestSweep:
    def test_table_output(self, capsys):
        code = main(
            [
                "sweep",
                "--graph",
                "grid:15x15",
                "--betas",
                "0.1,0.3",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cut_frac" in out
        assert len(out.strip().splitlines()) == 4  # header x2 + two rows


class TestMethods:
    def test_lists_everything(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "blelloch" in out and "grid" in out

    def test_json_registry_dump(self, capsys):
        assert main(["methods", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {m["name"] for m in doc["methods"]}
        assert {"bfs", "dijkstra", "sequential"} <= names
        bfs = next(m for m in doc["methods"] if m["name"] == "bfs")
        option_names = {o["name"] for o in bfs["options"]}
        assert "tie_break" in option_names
        assert "grid" in doc["generators"]
        assert "uniform" in doc["weight_schemes"]

    def test_json_dump_matches_registry(self, capsys):
        from repro.core.registry import describe_methods

        assert main(["methods", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["methods"] == describe_methods()


class TestServeAndRequest:
    """Drive the serve/request subcommands against an in-process server."""

    @pytest.fixture()
    def server(self):
        from repro.serve import serve_background

        with serve_background(max_workers=1) as server:
            yield server

    def _connect(self, server) -> str:
        host, port = server.address
        return f"{host}:{port}"

    def test_request_upload_and_decompose(self, server, capsys):
        connect = self._connect(server)
        argv = [
            "request", "--connect", connect, "--graph", "grid:10x10",
            "--beta", "0.3", "--seed", "2", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cached"] is False
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["result_digest"] == first["result_digest"]
        assert second["digest"] == first["digest"]

    def test_request_with_digest_and_options(self, server, capsys):
        connect = self._connect(server)
        assert main([
            "request", "--connect", connect, "--graph", "grid:8x8",
            "--beta", "0.3", "--json",
        ]) == 0
        digest = json.loads(capsys.readouterr().out)["digest"]
        assert main([
            "request", "--connect", connect, "--digest", digest,
            "--beta", "0.3", "--method", "bfs",
            "--option", "tie_break=permutation", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "bfs-permutation"

    def test_request_option_with_auto_digest_needs_method(
        self, server, capsys
    ):
        connect = self._connect(server)
        assert main([
            "request", "--connect", connect, "--graph", "grid:8x8",
            "--beta", "0.3", "--json",
        ]) == 0
        digest = json.loads(capsys.readouterr().out)["digest"]
        code = main([
            "request", "--connect", connect, "--digest", digest,
            "--beta", "0.3", "--option", "tie_break=quantile",
        ])
        assert code == 2
        assert "explicit --method" in capsys.readouterr().err

    def test_request_seed_sweep_reuses_one_graph(self, server, capsys):
        """--seed is the decomposition seed only: sweeping it over a
        random generator spec must hit one resident graph, not re-upload
        a differently-generated graph per seed."""
        connect = self._connect(server)
        digests = []
        for seed in (1, 2):
            assert main([
                "request", "--connect", connect, "--graph", "er:40,0.2",
                "--beta", "0.3", "--seed", str(seed), "--json",
            ]) == 0
            digests.append(json.loads(capsys.readouterr().out)["digest"])
        assert digests[0] == digests[1]

    def test_request_graph_file(self, server, tmp_path, capsys):
        from repro.graphs.generators import erdos_renyi
        from repro.graphs.io import write_edge_list

        graph_path = tmp_path / "g.edges"
        write_edge_list(erdos_renyi(30, 0.2, seed=1), graph_path)
        assert main([
            "request", "--connect", self._connect(server),
            "--graph-file", str(graph_path), "--beta", "0.3", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "unweighted"

    def test_request_stats_and_hello(self, server, capsys):
        connect = self._connect(server)
        assert main(["request", "--connect", connect, "--stats",
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert "cache" in stats and "pool" in stats
        assert main(["request", "--connect", connect, "--hello",
                     "--json"]) == 0
        hello = json.loads(capsys.readouterr().out)
        assert any(m["name"] == "bfs" for m in hello["methods"])
        assert "spanner" in hello["ops"]

    def test_request_stats_table_by_default(self, server, capsys):
        """Without --json, --stats renders the formatted counter table."""
        connect = self._connect(server)
        # Generate some traffic so the counters are non-trivial.
        assert main([
            "request", "--connect", connect, "--graph", "grid:6x6",
            "--beta", "0.3", "--json",
        ]) == 0
        capsys.readouterr()
        assert main(["request", "--connect", connect, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "server:" in out and "cache:" in out and "pool:" in out
        assert "hit_rate" in out
        assert "completion_rate" in out
        # It is a table, not a JSON dump.
        assert not out.lstrip().startswith("{")

    def test_spanner_subcommand_round_trip(self, server, capsys):
        connect = self._connect(server)
        argv = [
            "spanner", "--connect", connect, "--graph", "grid:10x10",
            "--beta", "0.3", "--seed", "2", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["cached"] is False
        assert first["num_edges"] == (
            first["num_tree_edges"] + first["num_bridge_edges"]
        )
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["cached"] is True
        assert second["result_digest"] == first["result_digest"]

    def test_spanner_matches_local_pipeline(self, server, capsys):
        from repro.graphs.generators import grid_2d
        from repro.pipeline import EngineProvider
        from repro.spanners import ldd_spanner

        local = ldd_spanner(
            grid_2d(10, 10), 0.3, seed=2, provider=EngineProvider()
        )
        assert main([
            "spanner", "--connect", self._connect(server),
            "--graph", "grid:10x10", "--beta", "0.3", "--seed", "2",
            "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_edges"] == local.num_edges
        assert doc["stretch_bound"] == local.stretch_bound

    def test_tree_subcommand_round_trip(self, server, capsys):
        connect = self._connect(server)
        argv = [
            "tree", "--connect", connect, "--graph", "grid:10x10",
            "--beta", "0.4", "--seed", "3", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["num_levels"] >= 1
        assert len(first["level_betas"]) == first["num_levels"]
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["cached"] is True

    def test_hst_subcommand_round_trip(self, server, capsys):
        connect = self._connect(server)
        argv = [
            "hst", "--connect", connect, "--graph", "grid:10x10",
            "--seed", "4", "--json",
        ]
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["num_levels"] >= 2
        # Level 0 is singletons; the top level is one piece per component.
        assert doc["pieces_per_level"][0] == 100
        assert doc["pieces_per_level"][-1] == 1
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out)["cached"] is True

    def test_app_subcommand_with_method_and_options(self, server, capsys):
        assert main([
            "spanner", "--connect", self._connect(server),
            "--graph", "grid:8x8", "--beta", "0.3", "--method", "bfs",
            "--option", "tie_break=permutation", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "bfs"

    def test_app_subcommand_needs_target(self, server, capsys):
        code = main([
            "spanner", "--connect", self._connect(server), "--beta", "0.3",
        ])
        assert code == 2
        assert "--digest" in capsys.readouterr().err

    def test_request_without_beta_is_cli_error(self, server, capsys):
        code = main([
            "request", "--connect", self._connect(server),
            "--graph", "grid:5x5",
        ])
        assert code == 2
        assert "--beta" in capsys.readouterr().err

    def test_request_bad_connect_spec(self, capsys):
        assert main(["request", "--connect", "nohost", "--stats"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_request_connection_refused_is_cli_error(self, capsys):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        code = main([
            "request", "--connect", f"127.0.0.1:{port}", "--stats",
            "--timeout", "2",
        ])
        assert code == 2
        assert "cannot connect" in capsys.readouterr().err

    def test_serve_subcommand_end_to_end(self, tmp_path, capsys):
        """`repro serve` in a thread, driven by `repro request`, stopped
        by --shutdown — the CI smoke path, in-process."""
        import threading
        import time

        port_file = tmp_path / "port"
        exit_codes: list[int] = []

        def run_server() -> None:
            exit_codes.append(main([
                "serve", "--port", "0", "--port-file", str(port_file),
                "--graph", "grid:12x12", "--workers", "1", "--ttl", "60",
            ]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not port_file.exists():
            time.sleep(0.05)
        assert port_file.exists(), "server never wrote its port file"
        port = int(port_file.read_text().strip())
        connect = f"127.0.0.1:{port}"
        try:
            assert main([
                "request", "--connect", connect, "--graph", "grid:12x12",
                "--beta", "0.25", "--json",
            ]) == 0
        finally:
            assert main(["request", "--connect", connect,
                         "--shutdown"]) == 0
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_codes == [0]
        out = capsys.readouterr().out
        assert "listening" in out
        assert '"cached": false' in out


class TestBenchThroughput:
    ARGS = [
        "bench-throughput", "--graph", "grid:8x8", "--beta", "0.3",
        "--requests", "2", "--executors", "serial,shared", "--workers", "1",
    ]

    def test_table_reports_identical_assignments(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "assignments identical across executors: yes" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical_assignments"] is True
        assert set(doc["executors"]) == {"serial", "shared"}
        assert doc["executors"]["serial"]["requests_per_sec"] > 0

    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_divergent_digests_exit_nonzero(
        self, monkeypatch, capsys, json_flag
    ):
        """A determinism regression must fail the command in BOTH output
        modes — CI's conformance smoke uses --json."""
        import repro.runtime.throughput as throughput_mod
        from repro.runtime.throughput import ThroughputRecord

        def fake_measure(*args, **kwargs):
            return {
                name: ThroughputRecord(
                    executor=name, num_requests=2, seconds=1.0,
                    requests_per_sec=2.0, assignments_digest=digest,
                )
                for name, digest in (("serial", "aaa"), ("shared", "bbb"))
            }

        monkeypatch.setattr(
            throughput_mod, "measure_throughput", fake_measure
        )
        assert main(self.ARGS + json_flag) == 1

    def test_unknown_executor_is_cli_error(self, capsys):
        code = main(
            ["bench-throughput", "--graph", "grid:5x5", "--beta", "0.3",
             "--executors", "warp"]
        )
        assert code == 2
        assert "unknown throughput executor" in capsys.readouterr().err
