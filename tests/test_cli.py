"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestDecompose:
    def test_human_output(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "grid:10x10",
                "--beta",
                "0.3",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cut_fraction" in out and "num_pieces" in out

    def test_json_output(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "path:50",
                "--beta",
                "0.2",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n"] == 50 and doc["m"] == 49
        assert doc["method"] == "bfs-fractional"

    def test_validate_flag(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "cycle:20",
                "--beta",
                "0.4",
                "--validate",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["invariants_ok"] is True

    def test_alternative_method(self, capsys):
        code = main(
            [
                "decompose",
                "--graph",
                "grid:8x8",
                "--beta",
                "0.3",
                "--method",
                "sequential",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "sequential-ball-growing"


class TestRender:
    def test_writes_ppm(self, tmp_path, capsys):
        out_file = tmp_path / "fig.ppm"
        code = main(
            [
                "render",
                "--rows",
                "20",
                "--cols",
                "20",
                "--beta",
                "0.2",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        assert out_file.exists()
        assert out_file.read_bytes().startswith(b"P6")
        assert "pieces" in capsys.readouterr().out

    def test_ascii_flag(self, tmp_path, capsys):
        code = main(
            [
                "render",
                "--rows",
                "12",
                "--cols",
                "12",
                "--beta",
                "0.3",
                "--out",
                str(tmp_path / "a.ppm"),
                "--ascii",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5


class TestSweep:
    def test_table_output(self, capsys):
        code = main(
            [
                "sweep",
                "--graph",
                "grid:15x15",
                "--betas",
                "0.1,0.3",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cut_frac" in out
        assert len(out.strip().splitlines()) == 4  # header x2 + two rows


class TestMethods:
    def test_lists_everything(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "blelloch" in out and "grid" in out


class TestBenchThroughput:
    ARGS = [
        "bench-throughput", "--graph", "grid:8x8", "--beta", "0.3",
        "--requests", "2", "--executors", "serial,shared", "--workers", "1",
    ]

    def test_table_reports_identical_assignments(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "assignments identical across executors: yes" in out

    def test_json_output(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical_assignments"] is True
        assert set(doc["executors"]) == {"serial", "shared"}
        assert doc["executors"]["serial"]["requests_per_sec"] > 0

    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_divergent_digests_exit_nonzero(
        self, monkeypatch, capsys, json_flag
    ):
        """A determinism regression must fail the command in BOTH output
        modes — CI's conformance smoke uses --json."""
        import repro.runtime.throughput as throughput_mod
        from repro.runtime.throughput import ThroughputRecord

        def fake_measure(*args, **kwargs):
            return {
                name: ThroughputRecord(
                    executor=name, num_requests=2, seconds=1.0,
                    requests_per_sec=2.0, assignments_digest=digest,
                )
                for name, digest in (("serial", "aaa"), ("shared", "bbb"))
            }

        monkeypatch.setattr(
            throughput_mod, "measure_throughput", fake_measure
        )
        assert main(self.ARGS + json_flag) == 1

    def test_unknown_executor_is_cli_error(self, capsys):
        code = main(
            ["bench-throughput", "--graph", "grid:5x5", "--beta", "0.3",
             "--executors", "warp"]
        )
        assert code == 2
        assert "unknown throughput executor" in capsys.readouterr().err
