"""Tests for the sharded serve cluster (repro.cluster).

The acceptance bar is cross-shard conformance: for every registered
decomposition method and multiple seeds, a request routed through the
cluster router must return results digest-identical to a direct
single-server round trip and to serial ``decompose()`` — sharding must
never change an answer, only where it is computed.
"""

from __future__ import annotations

import asyncio
import hashlib
import socket
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    DEFAULT_REPLICAS,
    ClusterProvider,
    ClusterRouter,
    HashRing,
    cluster_background,
    router_background,
)
from repro.core.engine import decompose
from repro.core.registry import method_names
from repro.embeddings.hierarchy import hierarchical_decomposition
from repro.errors import ParameterError, ServeError
from repro.graphs.generators import erdos_renyi, grid_2d
from repro.graphs.io import to_json
from repro.graphs.weighted import WeightedCSRGraph, weights_by_name
from repro.lowstretch.akpw import akpw_spanning_tree
from repro.pipeline import EngineProvider, provider_from_spec
from repro.serve import ServeClient, graph_digest, serve_background
from repro.serve.aio_client import AsyncServeClient
from repro.spanners.cluster_spanner import ldd_spanner

SEEDS = (31, 32)

GRID = grid_2d(10, 10)
WEIGHTED = weights_by_name(
    erdos_renyi(40, 0.2, seed=5), "uniform:0.5,2.0", seed=5
)


def serial_digest(graph, beta, *, method="auto", seed=0, **options) -> str:
    """SHA-256 of a serial decomposition's arrays (same hash as
    ServeResult.result_digest) — the sharding-independent ground truth."""
    result = decompose(graph, beta, method=method, seed=seed, **options)
    decomposition = result.decomposition
    per_vertex = (
        decomposition.radius
        if isinstance(graph, WeightedCSRGraph)
        else decomposition.hops
    )
    sha = hashlib.sha256()
    for arr in (decomposition.center, per_vertex):
        sha.update(np.ascontiguousarray(arr).tobytes())
    return sha.hexdigest()


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


# ---------------------------------------------------------------------------
# hash ring
# ---------------------------------------------------------------------------
class TestHashRing:
    NODES = ["10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"]

    def test_owner_deterministic_and_order_independent(self):
        ring = HashRing(self.NODES)
        keys = [f"digest-{i:04d}" for i in range(200)]
        owners = [ring.owner(k) for k in keys]
        assert owners == [ring.owner(k) for k in keys]  # stable
        shuffled = HashRing(list(reversed(self.NODES)))
        assert owners == [shuffled.owner(k) for k in keys]

    def test_distribution_reaches_every_node(self):
        ring = HashRing(self.NODES)
        keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(3000)]
        counts = ring.distribution(keys)
        assert set(counts) == set(self.NODES)
        # Consistent hashing is only statistically balanced; with 64
        # vnodes each node should still land well above a token share.
        assert min(counts.values()) > len(keys) * 0.10

    def test_single_node_owns_everything(self):
        ring = HashRing(["only:1"])
        assert ring.owner("anything") == "only:1"
        assert len(ring) == 1 and "only:1" in ring

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            HashRing([])
        with pytest.raises(ParameterError):
            HashRing(["a:1", "a:1"])
        with pytest.raises(ParameterError):
            HashRing(["a:1"], replicas=0)

    def test_default_replica_count(self):
        assert HashRing(["a:1"]).replicas == DEFAULT_REPLICAS


# ---------------------------------------------------------------------------
# a live 3-shard cluster + a direct single server for comparison
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def running_cluster():
    with cluster_background(
        [GRID, WEIGHTED], num_shards=3, max_workers=1
    ) as router:
        yield router


@pytest.fixture(scope="module")
def direct_server():
    with serve_background([GRID, WEIGHTED], max_workers=1) as server:
        yield server


class TestClusterConformance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cross_shard_conformance(self, seed, running_cluster, direct_server):
        """Every registered method, through the router vs a direct server
        vs serial — all three digest-identical."""
        cases = [
            (GRID, 0.3, "unweighted"),
            (WEIGHTED, 0.4, "weighted"),
        ]
        with ServeClient(*running_cluster.address) as routed, ServeClient(
            *direct_server.address
        ) as direct:
            for graph, beta, kind in cases:
                digest = graph_digest(graph)
                for method in method_names(kind):
                    via_router = routed.decompose(
                        digest, beta, method=method, seed=seed
                    ).result_digest()
                    via_direct = direct.decompose(
                        digest, beta, method=method, seed=seed
                    ).result_digest()
                    serial = serial_digest(
                        graph, beta, method=method, seed=seed
                    )
                    assert via_router == via_direct == serial, (
                        f"cluster drift for {kind} method={method} "
                        f"seed={seed}"
                    )

    def test_routing_is_stable_and_matches_the_ring(self, running_cluster):
        router = running_cluster
        ring = HashRing(list(router.shard_labels), replicas=router.ring.replicas)
        with ServeClient(*router.address) as client:
            for graph in (GRID, WEIGHTED):
                digest = graph_digest(graph)
                beta = 0.4 if isinstance(graph, WeightedCSRGraph) else 0.3
                shards = {
                    client._call(
                        {"op": "decompose", "digest": digest, "beta": beta,
                         "seed": s}
                    )["shard"]
                    for s in (1, 2, 1)
                }
                # one digest -> one shard, the one the ring names
                assert shards == {router.owner_of(digest)}
                assert router.owner_of(digest) == ring.owner(digest)

    def test_graphs_reside_only_on_their_owner(self, running_cluster):
        router = running_cluster
        residency = {}
        for label in router.shard_labels:
            host, port = label.rsplit(":", 1)
            with ServeClient(host, int(port)) as shard:
                residency[label] = set(shard.hello()["graphs"])
        for graph in (GRID, WEIGHTED):
            digest = graph_digest(graph)
            holders = {
                label for label, resident in residency.items()
                if digest in resident
            }
            assert holders == {router.owner_of(digest)}

    def test_hello_reports_cluster_membership(self, running_cluster):
        router = running_cluster
        with ServeClient(*router.address) as client:
            hello = client.hello()
        assert hello["server"] == "repro.cluster"
        assert sorted(hello["cluster"]["shards"]) == sorted(router.shard_labels)
        assert sorted(hello["cluster"]["alive"]) == sorted(router.shard_labels)
        for graph in (GRID, WEIGHTED):
            assert graph_digest(graph) in hello["graphs"]

    def test_stats_aggregates_and_names_shards(self, running_cluster):
        router = running_cluster
        with ServeClient(*router.address) as client:
            stats = client.stats()
        assert stats["router"]["shards"] == 3
        assert stats["router"]["alive"] == 3
        assert stats["router"]["forwarded"] >= stats["store"]["graphs"]
        assert stats["store"]["graphs"] >= 2  # both preloads resident
        assert set(stats["shards"]) == set(router.shard_labels)
        assert all(entry["ok"] for entry in stats["shards"].values())

    def test_upload_through_router_lands_once(self, running_cluster):
        router = running_cluster
        graph = erdos_renyi(35, 0.15, seed=61)
        with ServeClient(*router.address) as client:
            response = client.upload_graph(graph)
            assert response["digest"] == graph_digest(graph)
            assert response["shard"] == router.owner_of(response["digest"])
            again = client.upload_graph(graph)
            assert again["known"] is True
            assert again["shard"] == response["shard"]


class TestUploadOnMiss:
    def test_inline_graph_is_replayed_to_the_owner(self, running_cluster):
        router = running_cluster
        graph = erdos_renyi(30, 0.2, seed=77)
        digest = graph_digest(graph)
        with ServeClient(*router.address) as client:
            before = client.stats()["router"]["miss_uploads"]
            response = client._call(
                {
                    "op": "decompose",
                    "digest": digest,
                    "beta": 0.3,
                    "seed": 1,
                    "graph": {"payload": to_json(graph), "format": "json"},
                }
            )
            assert response["shard"] == router.owner_of(digest)
            after = client.stats()["router"]["miss_uploads"]
        assert after == before + 1
        # the decomposition itself is still bit-exact
        sha = hashlib.sha256()
        from repro.serve.protocol import as_array

        for key in ("center", "per_vertex"):
            sha.update(
                np.ascontiguousarray(as_array(response[key])).tobytes()
            )
        assert sha.hexdigest() == serial_digest(graph, 0.3, seed=1)

    def test_wrong_inline_graph_is_rejected(self, running_cluster):
        router = running_cluster
        wrong = erdos_renyi(31, 0.2, seed=78)
        missing = graph_digest(erdos_renyi(32, 0.2, seed=79))
        with ServeClient(*router.address) as client:
            with pytest.raises(ServeError, match="wrong graph"):
                client._call(
                    {
                        "op": "decompose",
                        "digest": missing,
                        "beta": 0.3,
                        "seed": 1,
                        "graph": {
                            "payload": to_json(wrong),
                            "format": "json",
                        },
                    }
                )


class TestChunkedUploadThroughRouter:
    def test_chunks_land_on_the_digest_owner_and_decompose_is_warm(
        self, running_cluster
    ):
        router = running_cluster
        graph = erdos_renyi(45, 0.12, seed=83)
        digest = graph_digest(graph)
        owner = router.owner_of(digest)
        with ServeClient(*router.address) as client:
            response = client.upload_chunked(graph, chunk_bytes=256)
            assert response["digest"] == digest
            assert response["complete"] is True
            # every chunk routed on upload_id == digest, so the graph is
            # resident only on the ring owner
            for label in router.shard_labels:
                host, port = label.rsplit(":", 1)
                with ServeClient(host, int(port)) as shard:
                    resident = digest in shard.hello()["graphs"]
                assert resident == (label == owner), label
            # a later decompose by digest is a warm hit on that shard —
            # no inline-graph replay needed
            before = client.stats()["router"]["miss_uploads"]
            served = client.decompose(digest, beta=0.3, seed=2)
            after = client.stats()["router"]["miss_uploads"]
            assert after == before
            assert served.result_digest() == serial_digest(
                graph, 0.3, seed=2
            )
            client.discard(digest)


# ---------------------------------------------------------------------------
# failure behaviour: dead shards fail loudly, ring stays put
# ---------------------------------------------------------------------------
class TestDeadShard:
    def test_dead_shard_errors_name_it_and_others_keep_serving(self):
        with serve_background(max_workers=1) as shard_a, serve_background(
            max_workers=1
        ) as shard_b:
            with router_background(
                [shard_a.address, shard_b.address],
                timeout=15.0,
                connect_window=0.2,
            ) as router:
                # find one resident graph per shard
                owned: dict[str, str] = {}
                with ServeClient(*router.address) as client:
                    for seed in range(40):
                        graph = erdos_renyi(25, 0.2, seed=seed)
                        label = router.owner_of(graph_digest(graph))
                        if label in owned:
                            continue
                        owned[label] = client.upload_graph(graph)["digest"]
                        if len(owned) == 2:
                            break
                assert len(owned) == 2, "seeds never covered both shards"

                dead_label = f"{shard_b.address[0]}:{shard_b.address[1]}"
                live_label = next(l for l in owned if l != dead_label)
                shard_b.request_shutdown()
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    try:
                        ServeClient(
                            *shard_b.address, timeout=1.0, connect_window=0
                        ).close()
                    except ServeError:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("shard b kept accepting after shutdown")

                with ServeClient(*router.address) as client:
                    with pytest.raises(
                        ServeError, match=f"shard {dead_label} unreachable"
                    ):
                        client.decompose(owned[dead_label], 0.3, seed=1)
                    # the surviving shard is untouched
                    result = client.decompose(owned[live_label], 0.3, seed=1)
                    assert result.num_pieces >= 1
                    stats = client.stats()
                assert stats["router"]["alive"] == 1
                assert stats["shards"][dead_label]["ok"] is False
                assert stats["shards"][live_label]["ok"] is True
                # the ring is never remapped on failure
                assert router.owner_of(owned[dead_label]) == dead_label


# ---------------------------------------------------------------------------
# async client against the cluster
# ---------------------------------------------------------------------------
class TestAsyncClient:
    def test_pipelined_burst_is_bit_exact(self, running_cluster):
        router = running_cluster
        digest = graph_digest(GRID)

        async def burst():
            async with AsyncServeClient(
                *router.address, pool_size=2
            ) as client:
                assert client.protocol is None  # no connection yet
                jobs = [
                    client.decompose(digest, 0.3, seed=seed)
                    for seed in range(6)
                    for _ in range(2)  # duplicates in flight together
                ]
                results = await asyncio.gather(*jobs)
                assert client.protocol == 2
                return results

        results = asyncio.run(burst())
        for seed, pair in zip(range(6), zip(results[::2], results[1::2])):
            expected = serial_digest(GRID, 0.3, seed=seed)
            assert pair[0].result_digest() == expected
            assert pair[1].result_digest() == expected

    def test_error_frames_do_not_poison_the_connection(self, running_cluster):
        router = running_cluster

        async def run():
            async with AsyncServeClient(
                *router.address, pool_size=1
            ) as client:
                with pytest.raises(ServeError, match="unknown graph digest"):
                    await client.decompose("0" * 64, 0.3)
                return await client.decompose(
                    graph_digest(GRID), 0.3, seed=2
                )

        result = asyncio.run(run())
        assert result.result_digest() == serial_digest(GRID, 0.3, seed=2)

    def test_async_connect_refused(self):
        port = _free_port()

        async def run():
            client = AsyncServeClient("127.0.0.1", port, connect_window=0)
            try:
                await client.hello()
            finally:
                await client.aclose()

        with pytest.raises(ServeError, match="cannot connect"):
            asyncio.run(run())


# ---------------------------------------------------------------------------
# relay data plane: zero-decode splice for same-generation round trips
# ---------------------------------------------------------------------------
class TestRelayPlane:
    def test_fast_path_engages_for_digest_keyed_ops(self, running_cluster):
        """Warm digest-keyed ops ride the relay channels (no task, no
        decode) once they are connected — the counter must move."""
        router = running_cluster
        digest = graph_digest(GRID)

        def relayed() -> int:
            return sum(ch._next_id for ch in router._relays.values())

        before = relayed()
        with ServeClient(*router.address) as client:
            # The first request finds the channel cold and falls back to
            # the task path while kicking off the connect; keep asking
            # until the relay picks the traffic up.
            for _ in range(100):
                result = client.decompose(digest, 0.3, seed=11)
                assert result.result_digest() == serial_digest(
                    GRID, 0.3, seed=11
                )
                if relayed() > before:
                    break
                time.sleep(0.02)
        assert relayed() > before, "relay fast path never engaged"

    def test_v1_client_round_trips_through_the_router(self, running_cluster):
        """Cross-generation: a v1 client against a v2 cluster takes the
        transcode path and still answers digest-identically."""
        digest = graph_digest(GRID)
        with ServeClient(
            *running_cluster.address, max_protocol=1
        ) as client:
            result = client.decompose(digest, 0.3, seed=7)
            assert client.protocol == 1
        assert result.result_digest() == serial_digest(GRID, 0.3, seed=7)


# ---------------------------------------------------------------------------
# connect backoff (satellite: retry with exponential backoff)
# ---------------------------------------------------------------------------
class TestConnectBackoff:
    def test_backoff_bridges_a_startup_race(self):
        """A client launched a beat before its server must connect once the
        server is up, instead of failing on the first refused attempt."""
        port = _free_port()
        outcome: dict[str, object] = {}

        def connect_early():
            try:
                with ServeClient(
                    "127.0.0.1", port, timeout=15.0, connect_window=10.0
                ) as client:
                    outcome["hello"] = client.hello()
            except BaseException as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        thread = threading.Thread(target=connect_early)
        thread.start()
        time.sleep(0.4)  # the client is now inside its backoff loop
        with serve_background(max_workers=1, port=port):
            thread.join(timeout=30)
        assert "hello" in outcome, f"client never connected: {outcome}"

    def test_window_bounds_the_retries(self):
        port = _free_port()
        start = time.monotonic()
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient("127.0.0.1", port, connect_window=0.5)
        elapsed = time.monotonic() - start
        assert 0.3 <= elapsed < 10.0  # it retried, then gave up


# ---------------------------------------------------------------------------
# pipeline seam: cluster as a provider
# ---------------------------------------------------------------------------
class TestClusterProvider:
    def test_spec_string_resolves_to_cluster_provider(self, running_cluster):
        host, port = running_cluster.address
        provider = provider_from_spec(f"cluster:{host}:{port}")
        try:
            assert isinstance(provider, ClusterProvider)
            assert provider.backend == "cluster"
        finally:
            provider.close()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_applications_identical_through_the_cluster(
        self, seed, running_cluster
    ):
        host, port = running_cluster.address
        engine = EngineProvider()
        with ClusterProvider(address=(host, port)) as provider:
            for via in (engine, provider):
                spanner = ldd_spanner(GRID, 0.3, seed=seed, provider=via)
                tree = akpw_spanning_tree(
                    GRID, beta=0.4, seed=seed, provider=via
                )
                hierarchy = hierarchical_decomposition(
                    GRID, seed=seed, provider=via
                )
                digests = tuple(
                    hashlib.sha256(
                        np.ascontiguousarray(arr).tobytes()
                    ).hexdigest()
                    for arr in (
                        spanner.spanner.edge_array(),
                        tree.forest.parent,
                        *hierarchy.labels,
                    )
                )
                if via is engine:
                    expected = digests
                else:
                    assert digests == expected, (
                        f"cluster provider drifted from engine at "
                        f"seed={seed}"
                    )


class TestBatchFaultInjection:
    """A batch that hits a dead shard or times out must fail the whole
    level loudly — without wedging sibling requests, the provider, or
    its memo."""

    @staticmethod
    def _graphs_covering_both_shards(router):
        """One graph per shard label, found by seed search."""
        owned: dict[str, object] = {}
        for seed in range(60):
            graph = erdos_renyi(25, 0.2, seed=seed)
            label = router.owner_of(graph_digest(graph))
            if label not in owned:
                owned[label] = graph
                if len(owned) == 2:
                    return owned
        pytest.fail("seeds never covered both shards")

    def test_dead_shard_fails_batch_loudly_not_provider(self):
        from repro.pipeline import DecomposeRequest

        with cluster_background(num_shards=2, max_workers=1) as router:
            owned = self._graphs_covering_both_shards(router)
            dead_label = router.shard_labels[1]
            dead_graph = owned[dead_label]
            live_label = next(l for l in owned if l != dead_label)
            live_graph = owned[live_label]
            with ClusterProvider(
                address=router.address, memo_bytes=0, timeout=20.0
            ) as provider:
                requests = [
                    DecomposeRequest(live_graph, 0.3, seed=1),
                    DecomposeRequest(dead_graph, 0.3, seed=1),
                    DecomposeRequest(live_graph, 0.35, seed=2),
                ]
                # Uploads land while both shards are alive; the failure
                # is injected mid-workload, between two batches.
                provider.decompose_batch(requests)

                dead_shard = next(
                    s for s in router.shard_servers
                    if f"{s.address[0]}:{s.address[1]}" == dead_label
                )
                dead_shard.request_shutdown()
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    try:
                        ServeClient(
                            *dead_shard.address, timeout=1.0,
                            connect_window=0,
                        ).close()
                    except ServeError:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("shard kept accepting after shutdown")

                fresh = [
                    DecomposeRequest(live_graph, 0.3, seed=11),
                    DecomposeRequest(dead_graph, 0.3, seed=11),
                    DecomposeRequest(live_graph, 0.35, seed=12),
                ]
                with pytest.raises(
                    ServeError,
                    match=f"batch decompose failed.*{dead_label} unreachable",
                ):
                    provider.decompose_batch(fresh)

                # The provider is not wedged: live-shard requests keep
                # serving, serially and batched, with correct results.
                single = provider.decompose(live_graph, 0.3, seed=11)
                assert _result_digest(single) == serial_digest(
                    live_graph, 0.3, seed=11
                )
                again = provider.decompose_batch(
                    [DecomposeRequest(live_graph, 0.35, seed=12)]
                )
                assert _result_digest(again[0]) == serial_digest(
                    live_graph, 0.35, seed=12
                )
                # The memo holds nothing from the failed batch: repeating
                # it fails the same way instead of serving a stale mix.
                assert provider.stats()["memo_hits"] == 0
                with pytest.raises(ServeError, match="unreachable"):
                    provider.decompose_batch(fresh)

    def test_timeout_fails_batch_and_drains_siblings(self):
        """Against a server that answers uploads but never decomposes,
        every request in the batch times out; the failure is one loud
        ServeError and the provider survives."""
        from repro.pipeline import DecomposeRequest, ServeProvider
        from repro.serve.protocol import (
            encode_frame,
            parse_frame_length,
        )

        graph = erdos_renyi(20, 0.2, seed=7)
        digest = graph_digest(graph)
        loop_holder: dict = {}

        async def serve_conn(reader, writer):
            while True:
                try:
                    header = await reader.readexactly(4)
                    body = await reader.readexactly(
                        parse_frame_length(header)
                    )
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                from repro.serve.protocol import decode_frame_payload

                message = decode_frame_payload(body)
                op = message.get("op")
                reply = None
                if op == "hello":
                    reply = {"ok": True, "protocol": 1}
                elif op == "upload":
                    reply = {"ok": True, "digest": digest, "known": False}
                # decompose: never answer — the timeout must fire.
                if reply is not None:
                    if "id" in message:
                        reply["id"] = message["id"]
                    writer.write(encode_frame(reply, 1))
                    await writer.drain()

        def run_server(ready):
            async def main():
                server = await asyncio.start_server(
                    serve_conn, "127.0.0.1", 0
                )
                loop_holder["loop"] = asyncio.get_running_loop()
                loop_holder["address"] = server.sockets[0].getsockname()[:2]
                loop_holder["stop"] = asyncio.Event()
                ready.set()
                async with server:
                    await loop_holder["stop"].wait()

            asyncio.run(main())

        ready = threading.Event()
        thread = threading.Thread(target=run_server, args=(ready,))
        thread.start()
        assert ready.wait(10)
        try:
            with ServeProvider(
                address=loop_holder["address"], timeout=0.5, memo_bytes=0
            ) as provider:
                requests = [
                    DecomposeRequest(graph, 0.3, seed=s) for s in range(3)
                ]
                before = time.monotonic()
                with pytest.raises(
                    ServeError, match="batch decompose failed.*timed out"
                ):
                    provider.decompose_batch(requests)
                # All three timed out concurrently, not one after another.
                assert time.monotonic() - before < 5.0
                assert not provider.closed
                assert provider.stats()["memo_hits"] == 0
        finally:
            loop_holder["loop"].call_soon_threadsafe(
                loop_holder["stop"].set
            )
            thread.join(timeout=10)


def _result_digest(result) -> str:
    decomposition = result.decomposition
    sha = hashlib.sha256()
    for arr in (decomposition.center, decomposition.hops):
        sha.update(np.ascontiguousarray(arr).tobytes())
    return sha.hexdigest()


class TestRouterValidation:
    def test_router_requires_shards(self):
        with pytest.raises(ParameterError, match="at least one shard"):
            ClusterRouter([])

    def test_graph_op_requires_digest(self, running_cluster):
        with ServeClient(*running_cluster.address) as client:
            with pytest.raises(ServeError, match="digest"):
                client._call({"op": "decompose", "beta": 0.3})

    def test_unknown_op_is_reported(self, running_cluster):
        with ServeClient(*running_cluster.address) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client._call({"op": "warp"})
