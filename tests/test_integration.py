"""Integration tests: full pipelines composed through the public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockdecomp import block_decomposition
from repro.core import (
    decompose,
    sample_shifts,
    partition_bfs_with_shifts,
    verify_decomposition,
)
from repro.embeddings import build_hst, hierarchical_decomposition, measure_distortion
from repro.graphs import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    random_regular,
    torus_2d,
)
from repro.lowstretch import akpw_spanning_tree, stretch_report
from repro.oracles import build_oracle
from repro.solvers import LaplacianSolver, random_zero_sum_rhs, residual_norm
from repro.spanners import ldd_spanner, measure_spanner_stretch
from repro.trees import LCAIndex, bfs_forest_from_decomposition


class TestDecomposeThenConsume:
    """One decomposition feeding every downstream application."""

    @pytest.fixture(scope="class")
    def workload(self):
        graph = grid_2d(18, 18)
        result = decompose(graph, 0.2, seed=7, validate=True)
        return graph, result

    def test_decomposition_valid(self, workload):
        _, result = workload
        assert result.report.all_invariants_hold()

    def test_forest_and_lca(self, workload):
        graph, result = workload
        forest = bfs_forest_from_decomposition(result.decomposition)
        idx = LCAIndex(forest)
        d = idx.tree_distance(0, graph.num_vertices - 1)
        # Opposite grid corners always end up in a finite tree iff same piece.
        labels = result.decomposition.labels
        if labels[0] == labels[-1]:
            assert np.isfinite(d[0])
        else:
            assert np.isinf(d[0])

    def test_spanner_from_same_decomposition(self, workload):
        graph, result = workload
        from repro.spanners import spanner_from_decomposition

        sp = spanner_from_decomposition(result.decomposition)
        report = measure_spanner_stretch(
            graph, sp.spanner, max_sources=30, seed=1
        )
        assert report.max <= sp.stretch_bound

    def test_oracle_from_same_decomposition(self, workload):
        graph, result = workload
        from repro.oracles import ClusterDistanceOracle

        oracle = ClusterDistanceOracle(result.decomposition)
        rep = oracle.evaluate(num_sources=5, seed=2)
        assert rep.underestimate_fraction == 0.0


class TestCrossFamilyPipelines:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: torus_2d(10, 10),
            lambda: random_regular(60, 4, seed=1),
            lambda: barabasi_albert(80, 2, seed=2),
            lambda: erdos_renyi(90, 0.05, seed=3),
        ],
        ids=["torus", "regular", "ba", "er"],
    )
    def test_full_stack_on_family(self, graph_fn):
        graph = graph_fn()
        # 1. decompose + verify
        result = decompose(graph, 0.25, seed=5, validate=True)
        assert result.report.all_invariants_hold()
        # 2. low-stretch tree + stretch
        tree = akpw_spanning_tree(graph, beta=0.4, seed=6)
        rep = stretch_report(graph, tree.forest)
        assert rep.mean >= 1.0
        # 3. solve a Laplacian system with the tree-derived preconditioner
        solver = LaplacianSolver(graph, preconditioner="ultrasparse", seed=7)
        b = random_zero_sum_rhs(graph, seed=8)
        res = solver.solve(b, rtol=1e-7)
        assert res.converged
        assert residual_norm(solver.laplacian, res.x, b) < 1e-6

    def test_block_decomposition_then_per_block_partition(self):
        graph = grid_2d(14, 14)
        bd = block_decomposition(graph, seed=9)
        # Blocks re-assemble the edge set exactly.
        assert bd.block_edge_counts().sum() == graph.num_edges
        # The first (largest) block is itself decomposable.
        sub = bd.block_subgraph(0)
        result = decompose(sub, 0.3, seed=10, validate=True)
        assert result.report.all_invariants_hold()

    def test_hierarchy_embedding_pipeline(self):
        graph = grid_2d(12, 12)
        h = hierarchical_decomposition(graph, seed=11)
        hst = build_hst(h)
        rep = measure_distortion(graph, hst, num_sources=4, seed=12)
        assert rep.mean_ratio >= 1.0
        assert rep.contraction_fraction < 0.25


class TestSharedShiftsAcrossMethods:
    def test_one_shift_sample_two_engines_one_downstream(self):
        graph = grid_2d(10, 10)
        shifts = sample_shifts(graph.num_vertices, 0.3, seed=13)
        d1, _ = partition_bfs_with_shifts(graph, shifts)
        report = verify_decomposition(
            d1, beta=0.3, delta_max=shifts.delta_max
        )
        assert report.radius_within_certificate
        oracle_rep = build_oracle(graph, 0.3, seed=13).evaluate(
            num_sources=4, seed=14
        )
        assert oracle_rep.underestimate_fraction == 0.0


class TestSeededDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        graph = erdos_renyi(70, 0.07, seed=20)

        def run():
            result = decompose(graph, 0.2, seed=21)
            tree = akpw_spanning_tree(graph, beta=0.5, seed=22)
            return (
                result.decomposition.center.tolist(),
                tree.forest.parent.tolist(),
            )

        assert run() == run()
