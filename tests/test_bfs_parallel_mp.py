"""Tests for the multiprocessing BFS backend.

The backend's contract is bit-identical output to the serial engine; these
tests run small graphs through real worker processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.delayed import delayed_multisource_bfs
from repro.bfs.parallel_mp import ParallelBFSEngine, delayed_multisource_bfs_mp
from repro.core.shifts import sample_shifts
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph


@pytest.fixture(scope="module")
def engine():
    """One worker pool shared across the module (pool startup is costly)."""
    graph = grid_2d(12, 12)
    with ParallelBFSEngine(graph, num_workers=2) as eng:
        yield graph, eng


class TestEquivalenceWithSerial:
    def test_exponential_shifts(self, engine):
        graph, eng = engine
        shifts = sample_shifts(graph.num_vertices, 0.1, seed=1)
        serial = delayed_multisource_bfs(
            graph, shifts.start_time, tie_key=shifts.tie_key
        )
        par = eng.partition_delayed(shifts.start_time, tie_key=shifts.tie_key)
        np.testing.assert_array_equal(serial.center, par.center)
        np.testing.assert_array_equal(serial.hops, par.hops)
        np.testing.assert_array_equal(
            serial.round_claimed, par.round_claimed
        )
        assert serial.num_rounds == par.num_rounds
        assert serial.frontier_sizes == par.frontier_sizes

    def test_multiple_runs_reuse_pool(self, engine):
        graph, eng = engine
        for seed in (2, 3):
            shifts = sample_shifts(graph.num_vertices, 0.2, seed=seed)
            serial = delayed_multisource_bfs(
                graph, shifts.start_time, tie_key=shifts.tie_key
            )
            par = eng.partition_delayed(
                shifts.start_time, tie_key=shifts.tie_key
            )
            np.testing.assert_array_equal(serial.center, par.center)

    def test_permutation_tie_keys(self, engine):
        graph, eng = engine
        shifts = sample_shifts(
            graph.num_vertices, 0.15, seed=4, mode="permutation"
        )
        serial = delayed_multisource_bfs(
            graph, shifts.start_time, tie_key=shifts.tie_key
        )
        par = eng.partition_delayed(shifts.start_time, tie_key=shifts.tie_key)
        np.testing.assert_array_equal(serial.center, par.center)


class TestOneShotWrapper:
    def test_disconnected_graph(self):
        g = erdos_renyi(40, 0.03, seed=9)
        rng = np.random.default_rng(5)
        start = rng.random(40) * 4
        serial = delayed_multisource_bfs(g, start)
        par = delayed_multisource_bfs_mp(g, start, num_workers=2)
        np.testing.assert_array_equal(serial.center, par.center)

    def test_single_worker(self):
        g = path_graph(15)
        start = np.linspace(0, 3, 15)
        serial = delayed_multisource_bfs(g, start)
        par = delayed_multisource_bfs_mp(g, start, num_workers=1)
        np.testing.assert_array_equal(serial.center, par.center)


class TestValidation:
    def test_bad_worker_count(self):
        with pytest.raises(ParameterError):
            ParallelBFSEngine(path_graph(3), num_workers=0)

    def test_bad_start_length(self, engine):
        graph, eng = engine
        with pytest.raises(ParameterError):
            eng.partition_delayed(np.zeros(3))

    def test_negative_start(self, engine):
        graph, eng = engine
        with pytest.raises(ParameterError):
            eng.partition_delayed(np.full(graph.num_vertices, -1.0))
