"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable, so each is executed in-process (scaled down via argv where the
script supports it) and its stdout is sanity-checked.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "cut fraction" in out
    assert "invariants hold:            True" in out


def test_figure1_grid(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = run_example("figure1_grid.py", ["60"], capsys)
    assert "beta" in out
    renders = list((tmp_path / "figure1_output").glob("*.ppm"))
    assert len(renders) == 6


def test_low_stretch_tree(capsys):
    out = run_example("low_stretch_tree.py", [], capsys)
    assert "AKPW trees" in out
    assert "BFS-tree baseline" in out


def test_sdd_solver(capsys):
    out = run_example("sdd_solver.py", [], capsys)
    assert "ultrasparse" in out
    assert "iterations" in out


def test_spanner(capsys):
    out = run_example("spanner.py", [], capsys)
    assert "hypercube" in out


def test_block_decomposition(capsys):
    out = run_example("block_decomposition.py", [], capsys)
    assert "blocks:" in out


def test_distance_oracle(capsys):
    out = run_example("distance_oracle.py", [], capsys)
    assert "sample queries" in out


def test_parallel_backends(capsys):
    out = run_example("parallel_backends.py", [], capsys)
    assert "identical=True" in out
    assert "Brent" in out


def test_serve_quickstart(capsys):
    out = run_example("serve_quickstart.py", ["20"], capsys)
    assert "reruns cached: True" in out
    assert "hits" in out
