"""Tests for the out-of-core graph substrate.

The memmap backing's contract is *transparency*: a graph whose arrays are
views into an ``RGM1`` file must be indistinguishable — same digest, same
decompositions, same quotients, same hierarchies — from the same graph
resident in RAM.  These tests pin that contract for the file format, the
streaming ingest, the backing registry, the pool, and the algorithm layers
that grew streaming paths (quotient, components, AKPW, hierarchies).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.engine import decompose
from repro.errors import GraphError, ParameterError
from repro.graphs import (
    BACKING_KINDS,
    backing_handle,
    backing_kind,
    connected_components,
    load_graph,
    open_mmap_graph,
    quotient_graph,
    save_mmap_graph,
    stream_edge_list_to_mmap,
    stream_graph_to_mmap,
    stream_metis_to_mmap,
)
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.io import write_edge_list, write_metis
from repro.graphs.mmapcsr import MmapCSR, MmapLayout, validate_csr_chunked
from repro.graphs.weighted import weights_by_name
from repro.lowstretch.akpw import akpw_spanning_tree
from repro.embeddings import contracted_hierarchy
from repro.runtime import DecompositionPool, DecompositionRequest
from repro.serve.store import graph_digest


@pytest.fixture
def er_graph():
    return erdos_renyi(90, 0.06, seed=17)


def _mmap_copy(graph, tmp_path, name="g.rgm"):
    return save_mmap_graph(graph, str(tmp_path / name))


# ---------------------------------------------------------------------------
# RGM1 roundtrip + backing registry
# ---------------------------------------------------------------------------
class TestMmapRoundtrip:
    def test_digest_identical_to_ram(self, er_graph, tmp_path):
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            assert graph_digest(wrapper.graph) == graph_digest(er_graph)
            assert wrapper.graph == er_graph
        finally:
            wrapper.close()

    def test_backing_registry(self, er_graph, tmp_path):
        assert backing_kind(er_graph) == "ram"
        assert set(BACKING_KINDS) == {"mmap", "ram", "shm"}
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            assert backing_kind(wrapper.graph) == "mmap"
            assert backing_handle(wrapper.graph) is wrapper
        finally:
            wrapper.close()

    def test_open_mmap_graph_keeps_mapping_alive(self, er_graph, tmp_path):
        path = tmp_path / "g.rgm"
        save_mmap_graph(er_graph, str(path)).close()
        graph = open_mmap_graph(str(path))
        assert graph == er_graph
        assert backing_kind(graph) == "mmap"

    def test_weighted_roundtrip(self, er_graph, tmp_path):
        weighted = weights_by_name(er_graph, "uniform:0.5,2.0", seed=3)
        wrapper = _mmap_copy(weighted, tmp_path)
        try:
            assert graph_digest(wrapper.graph) == graph_digest(weighted)
            assert type(wrapper.graph) is type(weighted)
        finally:
            wrapper.close()

    def test_owns_file_unlinks_on_close(self, er_graph, tmp_path):
        path = tmp_path / "owned.rgm"
        wrapper = MmapCSR.from_graph(er_graph, str(path), owns_file=True)
        assert path.exists()
        wrapper.close()
        assert not path.exists()

    def test_close_is_idempotent_and_views_survive_unlink(
        self, er_graph, tmp_path
    ):
        path = tmp_path / "owned.rgm"
        wrapper = MmapCSR.from_graph(er_graph, str(path), owns_file=True)
        graph = wrapper.graph
        wrapper.close()
        wrapper.close()
        # the mapping pins the inode: the graph stays readable post-unlink
        assert int(graph.indptr[-1]) == er_graph.num_arcs

    def test_validate_csr_chunked_accepts_and_rejects(
        self, er_graph, tmp_path
    ):
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            validate_csr_chunked(wrapper.graph, source="test")
        finally:
            wrapper.close()
        good = from_edges(4, np.asarray([[0, 1], [1, 2]]))
        indices = good.indices.copy()
        indices[0] = 3  # asymmetric: arc 0→3 without 3→0
        from repro.graphs.csr import CSRGraph

        bad = CSRGraph.from_arrays(
            {"indptr": good.indptr.copy(), "indices": indices},
            validate=False,
        )
        with pytest.raises(GraphError):
            validate_csr_chunked(bad, source="test")

    def test_layout_rejects_unknown_graph_class(self, tmp_path):
        with pytest.raises(ParameterError):
            MmapLayout.create(
                str(tmp_path / "x.rgm"),
                dict,
                [("indptr", (1,), np.dtype(np.int64))],
            )


# ---------------------------------------------------------------------------
# streaming ingest
# ---------------------------------------------------------------------------
class TestStreamingIngest:
    def test_edge_list_digest_matches_in_memory(self, er_graph, tmp_path):
        text = tmp_path / "g.edges"
        write_edge_list(er_graph, text)
        wrapper = stream_edge_list_to_mmap(str(text), str(tmp_path / "g.rgm"))
        try:
            assert graph_digest(wrapper.graph) == graph_digest(er_graph)
        finally:
            wrapper.close()

    def test_metis_digest_matches_in_memory(self, er_graph, tmp_path):
        text = tmp_path / "g.metis"
        write_metis(er_graph, text)
        wrapper = stream_metis_to_mmap(str(text), str(tmp_path / "g.rgm"))
        try:
            assert graph_digest(wrapper.graph) == graph_digest(er_graph)
        finally:
            wrapper.close()

    def test_dispatching_stream_matches_load_graph(self, er_graph, tmp_path):
        text = tmp_path / "g.edges"
        write_edge_list(er_graph, text)
        wrapper = stream_graph_to_mmap(str(text), str(tmp_path / "g.rgm"))
        try:
            assert wrapper.graph == load_graph(text)
        finally:
            wrapper.close()

    def test_edgeless_graph(self, tmp_path):
        text = tmp_path / "empty.edges"
        text.write_text("5 0\n")
        wrapper = stream_edge_list_to_mmap(
            str(text), str(tmp_path / "e.rgm")
        )
        try:
            assert wrapper.graph.num_vertices == 5
            assert wrapper.graph.num_edges == 0
        finally:
            wrapper.close()

    def test_empty_file_raises(self, tmp_path):
        text = tmp_path / "void.edges"
        text.write_text("")
        with pytest.raises(GraphError, match="empty"):
            stream_edge_list_to_mmap(str(text), str(tmp_path / "v.rgm"))

    def test_crlf_and_trailing_blank_lines(self, tmp_path):
        text = tmp_path / "crlf.edges"
        text.write_bytes(b"3 2\r\n0 1\r\n\r\n1 2\r\n\r\n\r\n")
        wrapper = stream_edge_list_to_mmap(
            str(text), str(tmp_path / "c.rgm")
        )
        try:
            assert wrapper.graph == path_graph(3)
        finally:
            wrapper.close()

    def test_id_limit_forces_int64_promotion(self, er_graph, tmp_path):
        """``id_limit=1`` makes every id take the int64 scratch path the
        int32 boundary would force at ``n ≥ 2^31`` — same graph out."""
        text = tmp_path / "g.edges"
        write_edge_list(er_graph, text)
        wrapper = stream_edge_list_to_mmap(
            str(text), str(tmp_path / "g.rgm"), id_limit=1
        )
        try:
            assert graph_digest(wrapper.graph) == graph_digest(er_graph)
        finally:
            wrapper.close()

    def test_header_mismatch_raises_and_cleans_up(self, tmp_path):
        text = tmp_path / "bad.edges"
        text.write_text("3 5\n0 1\n1 2\n")
        out = tmp_path / "bad.rgm"
        with pytest.raises(GraphError, match="edge count mismatch"):
            stream_edge_list_to_mmap(str(text), str(out))
        assert not out.exists()

    def test_duplicate_edges_collapse(self, tmp_path):
        text = tmp_path / "dup.edges"
        text.write_text("3 4\n0 1\n1 0\n1 2\n2 1\n")
        wrapper = stream_edge_list_to_mmap(
            str(text), str(tmp_path / "d.rgm")
        )
        try:
            assert wrapper.graph == path_graph(3)
        finally:
            wrapper.close()


# ---------------------------------------------------------------------------
# pool + backing stats
# ---------------------------------------------------------------------------
class TestPoolMmapServing:
    def test_pool_serves_mmap_graph_identically(self, er_graph, tmp_path):
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            with DecompositionPool(
                {"ram": er_graph, "mm": wrapper.graph}, max_workers=1
            ) as pool:
                stats = pool.stats()
                assert stats["backing_mmap"] == 1
                assert stats["backing_shm"] == 1
                assert stats["backing_ram"] == 0
                results = pool.run(
                    [
                        DecompositionRequest(
                            graph_key=key, beta=0.3, seed=5
                        )
                        for key in ("ram", "mm")
                    ]
                )
            a, b = (r.decomposition for r in results)
            np.testing.assert_array_equal(a.center, b.center)
            np.testing.assert_array_equal(a.hops, b.hops)
        finally:
            wrapper.close()

    def test_pool_close_leaves_unowned_file(self, er_graph, tmp_path):
        path = tmp_path / "g.rgm"
        wrapper = save_mmap_graph(er_graph, str(path))
        try:
            with DecompositionPool({"g": wrapper.graph}, max_workers=1):
                pass
            assert path.exists()
        finally:
            wrapper.close()


# ---------------------------------------------------------------------------
# streaming algorithm parity
# ---------------------------------------------------------------------------
class TestStreamingAlgorithmParity:
    def test_quotient_streamed_matches_in_memory(self, er_graph):
        labels = decompose(er_graph, 0.4, seed=2).decomposition.labels
        base = quotient_graph(er_graph, labels)
        for chunk_arcs in (1, 7, 10**6):
            streamed = quotient_graph(
                er_graph, labels, chunk_arcs=chunk_arcs
            )
            assert streamed.graph == base.graph
            np.testing.assert_array_equal(
                streamed.edge_multiplicity, base.edge_multiplicity
            )
            np.testing.assert_array_equal(
                streamed.representative_edge, base.representative_edge
            )

    def test_quotient_auto_streams_on_mmap(self, er_graph, tmp_path):
        labels = decompose(er_graph, 0.4, seed=2).decomposition.labels
        base = quotient_graph(er_graph, labels)
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            streamed = quotient_graph(wrapper.graph, labels)
            assert streamed.graph == base.graph
            np.testing.assert_array_equal(
                streamed.representative_edge, base.representative_edge
            )
        finally:
            wrapper.close()

    def test_connected_components_mmap_parity(self, tmp_path):
        graph = erdos_renyi(120, 0.015, seed=23)  # several components
        base = connected_components(graph)
        wrapper = _mmap_copy(graph, tmp_path)
        try:
            np.testing.assert_array_equal(
                connected_components(wrapper.graph), base
            )
        finally:
            wrapper.close()

    def test_akpw_mmap_parity(self, er_graph, tmp_path):
        ram = akpw_spanning_tree(er_graph, beta=0.4, seed=11)
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            mm = akpw_spanning_tree(wrapper.graph, beta=0.4, seed=11)
        finally:
            wrapper.close()
        np.testing.assert_array_equal(mm.forest.parent, ram.forest.parent)
        assert mm.level_sizes == ram.level_sizes

    def test_contracted_hierarchy_backing_independent(
        self, er_graph, tmp_path
    ):
        ram = contracted_hierarchy(er_graph, seed=9)
        wrapper = _mmap_copy(er_graph, tmp_path)
        try:
            mm = contracted_hierarchy(wrapper.graph, seed=9)
        finally:
            wrapper.close()
        assert ram.num_levels == mm.num_levels
        for a, b in zip(ram.labels, mm.labels):
            np.testing.assert_array_equal(a, b)

    def test_contracted_hierarchy_shape(self, er_graph):
        h = contracted_hierarchy(er_graph, seed=1)
        n = er_graph.num_vertices
        np.testing.assert_array_equal(h.labels[0], np.arange(n))
        # top level = connected components (a Hierarchy validates
        # laminarity in __post_init__, so construction is the laminar test)
        np.testing.assert_array_equal(
            h.labels[-1], connected_components(er_graph)
        )
        pieces = h.pieces_per_level()
        assert all(a >= b for a, b in zip(pieces, pieces[1:]))
