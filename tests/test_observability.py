"""End-to-end observability tests: trace trees, the metrics op, slow logs.

The acceptance bar (ISSUE 8): one decompose through the serve stack with
tracing on yields a *single* trace — client root span, router relay span,
shard server span, pool worker span, and the BFS phase spans all sharing
one trace_id — and the ``metrics`` op returns merged histograms from every
shard.  These tests run the real loopback topologies (serve_background /
cluster_background) with real worker processes.

In-process loopback means every shard shares this process's global metric
registry, so metric assertions check presence, never exact counts.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.cluster import cluster_background
from repro.graphs.generators import grid_2d
from repro.serve import ServeClient, serve_background
from repro.telemetry import trace

GRAPH = grid_2d(8, 8)


@pytest.fixture(autouse=True)
def _restore_tracing():
    yield
    trace.disable_tracing()


@pytest.fixture(scope="module")
def loopback():
    with serve_background(max_workers=1) as server:
        with ServeClient(*server.address) as client:
            digest = client.upload(GRAPH)
            yield server, client, digest


@pytest.fixture(scope="module")
def cluster():
    with cluster_background(num_shards=2, max_workers=1) as router:
        with ServeClient(*router.address) as client:
            digest = client.upload(GRAPH)
            yield router, client, digest


def _by_name(spans):
    index: dict[str, dict] = {}
    for record in spans:
        index.setdefault(record["name"], record)
    return index


# ---------------------------------------------------------------------------
# single-server loopback
# ---------------------------------------------------------------------------
class TestServeTracing:
    def test_decompose_produces_one_cross_process_tree(self, loopback):
        _, client, digest = loopback
        spans: list[dict] = []
        trace.enable_tracing(spans.append)
        client.decompose(digest, 0.3, seed=41)
        trace.disable_tracing()

        names = _by_name(spans)
        for expected in (
            "client.decompose", "server.decompose", "pool.execute",
            "bfs.shifts", "bfs.expand",
        ):
            assert expected in names, f"missing span {expected}: {names.keys()}"

        # One trace end to end.
        assert len({record["trace_id"] for record in spans}) == 1
        # Parent links encode the hop order.
        client_span = names["client.decompose"]
        server_span = names["server.decompose"]
        pool_span = names["pool.execute"]
        assert client_span["parent_id"] is None
        assert server_span["parent_id"] == client_span["span_id"]
        assert pool_span["parent_id"] == server_span["span_id"]
        assert names["bfs.shifts"]["parent_id"] == pool_span["span_id"]
        assert names["bfs.expand"]["parent_id"] == pool_span["span_id"]
        # The pool span really ran in the worker process.
        assert pool_span["pid"] != os.getpid()
        assert client_span["pid"] == os.getpid()
        # And the whole thing pretty-prints as a single tree.
        text = trace.format_trace_tree(spans)
        assert text.count("trace ") == 1
        assert "pool.execute" in text

    def test_no_tracing_no_spans_header(self, loopback):
        _, client, digest = loopback
        response = client.decompose(digest, 0.3, seed=42)
        # The slim result object exists and tracing never activated.
        assert response.result_digest
        assert not trace.tracing_active()

    def test_metrics_op_exposes_request_series(self, loopback):
        _, client, digest = loopback
        client.decompose(digest, 0.3, seed=43)
        doc = client.metrics()
        assert doc["ok"]
        assert doc["processes"] >= 1
        counters = doc["metrics"]["counters"]
        assert any(
            key.startswith("repro_requests_total") for key in counters
        )
        histograms = doc["metrics"]["histograms"]
        assert any(
            key.startswith("repro_request_seconds") for key in histograms
        )
        assert "# TYPE repro_requests_total counter" in doc["text"]
        assert "text" not in client.metrics(text=False)

    def test_stats_snapshot_does_not_mutate_provider(self, loopback):
        server, client, _ = loopback
        doc = client.stats()
        # The serve layer redacts provider-internal sections...
        assert doc["app_provider"] is not None
        assert "memo" not in doc["app_provider"]
        assert "pool" not in doc["app_provider"]
        # ...without popping them out of the live provider's own stats.
        assert "memo" in server._app_provider.stats()
        assert client.stats()["app_provider"] == doc["app_provider"]


class TestSlowRequestLog:
    def test_slow_request_emits_structured_warning(self, caplog):
        with serve_background(max_workers=1, slow_request_ms=0.0) as server:
            with ServeClient(*server.address) as client:
                digest = client.upload(GRAPH)
                with caplog.at_level(
                    logging.WARNING, logger="repro.serve.server"
                ):
                    client.decompose(digest, 0.3, seed=44)
        slow = [
            record for record in caplog.records
            if record.name == "repro.serve.server"
            and "slow request" in record.getMessage()
        ]
        assert slow, "no slow-request warning was logged"
        payload = json.loads(slow[-1].getMessage().split("slow request: ")[1])
        assert payload["op"] == "decompose"
        assert payload["elapsed_ms"] >= 0.0
        assert payload["threshold_ms"] == 0.0
        assert payload["ok"] is True


# ---------------------------------------------------------------------------
# two-shard cluster
# ---------------------------------------------------------------------------
class TestClusterObservability:
    def test_trace_crosses_the_router(self, cluster):
        router, client, digest = cluster
        spans: list[dict] = []
        trace.enable_tracing(spans.append)
        client.decompose(digest, 0.3, seed=45)
        trace.disable_tracing()

        names = _by_name(spans)
        for expected in (
            "client.decompose", "router.relay", "server.decompose",
            "pool.execute", "bfs.shifts", "bfs.expand",
        ):
            assert expected in names, f"missing span {expected}: {names.keys()}"
        assert len({record["trace_id"] for record in spans}) == 1
        # The relay span re-parents the shard: client -> relay -> server.
        client_span = names["client.decompose"]
        relay_span = names["router.relay"]
        server_span = names["server.decompose"]
        assert relay_span["parent_id"] == client_span["span_id"]
        assert server_span["parent_id"] == relay_span["span_id"]
        assert relay_span["attrs"]["shard"] in router.shard_labels
        assert relay_span["attrs"]["plane"] in ("relay", "task")

    def test_metrics_fan_out_merges_all_shards(self, cluster):
        router, client, digest = cluster
        client.decompose(digest, 0.3, seed=46)
        doc = client.metrics()
        assert doc["ok"]
        # Router process + one per shard (loopback threads still count
        # their own worker processes).
        assert doc["processes"] >= 3
        assert set(doc["shards"]) == set(router.shard_labels)
        assert all(entry["ok"] for entry in doc["shards"].values())
        merged = doc["metrics"]
        assert any(
            key.startswith("repro_requests_total")
            for key in merged["counters"]
        )
        # The router contributed its own relay latency series.
        assert any(
            key.startswith("repro_relay_seconds")
            for key in merged["histograms"]
        )
        assert "repro_relay_seconds_bucket" in doc["text"]
