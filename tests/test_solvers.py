"""Tests for the Laplacian solver stack (PCG, preconditioners, facade)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConvergenceError, GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.generators import cycle_graph, erdos_renyi, grid_2d, path_graph
from repro.graphs.weighted import uniform_weights, weighted_from_edges
from repro.lowstretch.akpw import akpw_spanning_tree, bfs_spanning_tree
from repro.solvers.jacobi import JacobiPreconditioner
from repro.solvers.laplacian import (
    component_projector,
    graph_laplacian,
    random_zero_sum_rhs,
    residual_norm,
)
from repro.solvers.pcg import pcg
from repro.solvers.solver import PRECONDITIONERS, LaplacianSolver
from repro.solvers.tree_precond import TreePreconditioner
from repro.solvers.ultrasparse import UltrasparsifierPreconditioner
from repro.trees.structure import RootedForest


class TestLaplacian:
    def test_structure(self):
        g = path_graph(4)
        lap = graph_laplacian(g).toarray()
        expected = np.asarray(
            [
                [1, -1, 0, 0],
                [-1, 2, -1, 0],
                [0, -1, 2, -1],
                [0, 0, -1, 1],
            ],
            dtype=float,
        )
        np.testing.assert_allclose(lap, expected)

    def test_weighted_structure(self):
        g = weighted_from_edges(
            2, np.asarray([[0, 1]]), np.asarray([3.0])
        )
        lap = graph_laplacian(g).toarray()
        np.testing.assert_allclose(lap, [[3.0, -3.0], [-3.0, 3.0]])

    def test_rows_sum_to_zero(self):
        g = erdos_renyi(40, 0.1, seed=0)
        lap = graph_laplacian(g)
        np.testing.assert_allclose(
            np.asarray(lap.sum(axis=1)).ravel(), 0.0, atol=1e-12
        )

    def test_psd(self):
        g = grid_2d(5, 5)
        lap = graph_laplacian(g).toarray()
        eigs = np.linalg.eigvalsh(lap)
        assert eigs.min() >= -1e-9

    def test_projector_zeroes_component_means(self, two_triangles):
        project = component_projector(two_triangles)
        x = np.asarray([1.0, 2.0, 3.0, 10.0, 20.0, 30.0])
        px = project(x)
        assert px[:3].sum() == pytest.approx(0.0)
        assert px[3:].sum() == pytest.approx(0.0)

    def test_random_rhs_in_range(self, two_triangles):
        b = random_zero_sum_rhs(two_triangles, seed=1)
        assert b[:3].sum() == pytest.approx(0.0, abs=1e-12)
        assert b[3:].sum() == pytest.approx(0.0, abs=1e-12)

    def test_residual_norm(self):
        g = path_graph(3)
        lap = graph_laplacian(g)
        b = np.asarray([1.0, 0.0, -1.0])
        assert residual_norm(lap, np.zeros(3), b) == pytest.approx(1.0)
        with pytest.raises(ParameterError):
            residual_norm(lap, np.zeros(2), b)


class TestPCG:
    def test_solves_spd_system(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((20, 20))
        spd = a @ a.T + 20 * np.eye(20)
        b = rng.standard_normal(20)
        res = pcg(lambda x: spd @ x, b, rtol=1e-10, max_iterations=200)
        assert res.converged
        np.testing.assert_allclose(spd @ res.x, b, atol=1e-6)

    def test_zero_rhs(self):
        res = pcg(lambda x: x, np.zeros(5))
        assert res.converged and res.num_iterations == 0

    def test_iteration_budget_respected(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((30, 30))
        spd = a @ a.T + 0.01 * np.eye(30)  # ill-conditioned
        b = rng.standard_normal(30)
        res = pcg(lambda x: spd @ x, b, rtol=1e-14, max_iterations=3)
        assert not res.converged
        assert res.num_iterations == 3

    def test_raise_on_failure(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((30, 30))
        spd = a @ a.T + 0.01 * np.eye(30)
        b = rng.standard_normal(30)
        with pytest.raises(ConvergenceError):
            pcg(
                lambda x: spd @ x,
                b,
                rtol=1e-14,
                max_iterations=2,
                raise_on_failure=True,
            )

    def test_singular_laplacian_with_projector(self):
        g = cycle_graph(12)
        lap = graph_laplacian(g)
        b = random_zero_sum_rhs(g, seed=5)
        res = pcg(
            lambda x: lap @ x,
            b,
            project=component_projector(g),
            rtol=1e-10,
            max_iterations=200,
        )
        assert res.converged
        assert residual_norm(lap, res.x, b) < 1e-9
        assert res.x.sum() == pytest.approx(0.0, abs=1e-8)

    def test_preconditioner_reduces_iterations(self):
        # Diagonally dominant system with wildly varying diagonal: Jacobi
        # must help.
        n = 60
        diag = np.logspace(0, 4, n)
        mat = np.diag(diag) + 0.1 * np.ones((n, n))
        b = np.random.default_rng(6).standard_normal(n)
        plain = pcg(lambda x: mat @ x, b, rtol=1e-10, max_iterations=500)
        jac = pcg(
            lambda x: mat @ x,
            b,
            preconditioner=lambda r: r / diag,
            rtol=1e-10,
            max_iterations=500,
        )
        assert jac.num_iterations < plain.num_iterations

    def test_residual_history_monotone_tail(self):
        g = grid_2d(6, 6)
        lap = graph_laplacian(g)
        b = random_zero_sum_rhs(g, seed=7)
        res = pcg(
            lambda x: lap @ x,
            b,
            project=component_projector(g),
            rtol=1e-8,
        )
        assert res.residual_history[0] == pytest.approx(1.0)
        assert res.residual_history[-1] <= 1e-8

    def test_param_validation(self):
        with pytest.raises(ParameterError):
            pcg(lambda x: x, np.ones(3), rtol=0.0)
        with pytest.raises(ParameterError):
            pcg(lambda x: x, np.ones(3), max_iterations=0)


class TestTreePreconditioner:
    def test_exact_tree_solve(self):
        # On a tree the preconditioner IS the (pseudo)inverse: PCG converges
        # in O(1) iterations.
        g = path_graph(30)
        forest = bfs_spanning_tree(g, root=0)
        tp = TreePreconditioner(forest)
        lap = graph_laplacian(g)
        b = random_zero_sum_rhs(g, seed=8)
        y = tp.apply(b)
        np.testing.assert_allclose(lap @ y, b, atol=1e-9)

    def test_apply_matches_dense_pinv(self):
        g = path_graph(10)
        forest = bfs_spanning_tree(g, root=3)
        tp = TreePreconditioner(forest)
        lap = graph_laplacian(g).toarray()
        b = random_zero_sum_rhs(g, seed=9)
        np.testing.assert_allclose(
            tp.apply(b), np.linalg.pinv(lap) @ b, atol=1e-8
        )

    def test_weighted_tree(self):
        parent = np.asarray([-1, 0, 1])
        weight = np.asarray([0.0, 2.0, 5.0])
        forest = RootedForest(parent=parent, edge_weight=weight)
        tp = TreePreconditioner(forest)
        # Dense weighted Laplacian of the 3-path with weights 2, 5.
        lap = np.asarray(
            [[2.0, -2.0, 0.0], [-2.0, 7.0, -5.0], [0.0, -5.0, 5.0]]
        )
        b = np.asarray([1.0, 0.5, -1.5])
        np.testing.assert_allclose(
            tp.apply(b), np.linalg.pinv(lap) @ b, atol=1e-9
        )

    def test_forest_with_components(self, two_triangles):
        forest = bfs_spanning_tree(two_triangles, seed=10)
        tp = TreePreconditioner(forest)
        b = random_zero_sum_rhs(two_triangles, seed=11)
        y = tp.apply(b)
        assert y[:3].sum() == pytest.approx(0.0, abs=1e-9)
        assert y[3:].sum() == pytest.approx(0.0, abs=1e-9)

    def test_rhs_length_checked(self):
        tp = TreePreconditioner(bfs_spanning_tree(path_graph(4), root=0))
        with pytest.raises(GraphError):
            tp.apply(np.zeros(3))


class TestUltrasparsifier:
    def test_apply_is_linear_operator(self):
        g = grid_2d(7, 7)
        forest = akpw_spanning_tree(g, seed=12).forest
        pc = UltrasparsifierPreconditioner(g, forest, seed=13)
        r1, r2 = np.random.default_rng(14).standard_normal((2, 49))
        np.testing.assert_allclose(
            pc.apply(r1 + r2), pc.apply(r1) + pc.apply(r2), atol=1e-8
        )

    def test_includes_tree_at_minimum(self):
        g = grid_2d(6, 6)
        forest = akpw_spanning_tree(g, seed=15).forest
        pc = UltrasparsifierPreconditioner(
            g, forest, offtree_fraction=0.0, seed=16
        )
        assert pc.num_edges == g.num_vertices - 1

    def test_fraction_validated(self):
        g = grid_2d(4, 4)
        forest = akpw_spanning_tree(g, seed=17).forest
        with pytest.raises(ParameterError):
            UltrasparsifierPreconditioner(g, forest, offtree_fraction=1.5)


class TestLaplacianSolverFacade:
    @pytest.mark.parametrize("pc", PRECONDITIONERS)
    def test_all_preconditioners_converge(self, pc):
        g = grid_2d(10, 10)
        solver = LaplacianSolver(g, preconditioner=pc, seed=18)
        b = random_zero_sum_rhs(g, seed=19)
        res = solver.solve(b, rtol=1e-8)
        assert res.converged, pc
        assert residual_norm(solver.laplacian, res.x, b) < 1e-7

    def test_ultrasparse_beats_unpreconditioned(self):
        g = grid_2d(20, 20)
        b = random_zero_sum_rhs(g, seed=20)
        fast = LaplacianSolver(g, preconditioner="ultrasparse", seed=21)
        slow = LaplacianSolver(g, preconditioner="none", seed=21)
        it_fast = fast.solve(b).num_iterations
        it_slow = slow.solve(b).num_iterations
        assert it_fast < it_slow

    def test_tree_stats_recorded(self):
        g = grid_2d(8, 8)
        solver = LaplacianSolver(g, preconditioner="tree-akpw", seed=22)
        assert np.isfinite(solver.stats.tree_total_stretch)
        assert solver.stats.preconditioner == "tree-akpw"
        none_solver = LaplacianSolver(g, preconditioner="none")
        assert np.isnan(none_solver.stats.tree_total_stretch)

    def test_unknown_preconditioner(self):
        with pytest.raises(ParameterError):
            LaplacianSolver(grid_2d(3, 3), preconditioner="magic")

    def test_disconnected_graph(self, two_triangles):
        solver = LaplacianSolver(
            two_triangles, preconditioner="tree-bfs", seed=23
        )
        b = random_zero_sum_rhs(two_triangles, seed=24)
        res = solver.solve(b)
        assert res.converged
