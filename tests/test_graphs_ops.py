"""Unit tests for graph operations (subgraph, components, quotient, cuts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_2d,
    path_graph,
)
from repro.graphs.ops import (
    connected_components,
    count_cut_edges,
    cut_edge_mask,
    degree_statistics,
    induced_subgraph,
    is_connected,
    num_components,
    quotient_graph,
)


class TestInducedSubgraph:
    def test_grid_block(self):
        g = grid_2d(4, 4)
        # top-left 2x2 block: ids 0, 1, 4, 5
        sub = induced_subgraph(g, np.asarray([0, 1, 4, 5]))
        assert sub.graph.num_vertices == 4
        assert sub.graph.num_edges == 4  # a 2x2 grid square

    def test_mappings_are_inverse(self):
        g = grid_2d(5, 5)
        vertices = np.asarray([3, 7, 11, 20])
        sub = induced_subgraph(g, vertices)
        np.testing.assert_array_equal(sub.original_ids, sorted(vertices))
        for new, orig in enumerate(sub.original_ids):
            assert sub.new_ids[orig] == new

    def test_vertices_deduplicated(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.asarray([1, 1, 2]))
        assert sub.graph.num_vertices == 2
        assert sub.graph.num_edges == 1

    def test_empty_selection(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.asarray([], dtype=np.int64))
        assert sub.graph.num_vertices == 0

    def test_out_of_range(self):
        with pytest.raises(GraphError):
            induced_subgraph(path_graph(3), np.asarray([5]))

    def test_no_edges_between_selected(self):
        g = path_graph(5)
        sub = induced_subgraph(g, np.asarray([0, 2, 4]))
        assert sub.graph.num_edges == 0


class TestConnectedComponents:
    def test_connected_graph_single_label(self):
        labels = connected_components(grid_2d(4, 4))
        assert labels.max() == 0

    def test_two_components(self, two_triangles):
        labels = connected_components(two_triangles)
        assert num_components(two_triangles) == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_labels_dense_and_ordered(self):
        g = from_edges(5, [(3, 4)])  # isolated 0,1,2 then component {3,4}
        labels = connected_components(g)
        np.testing.assert_array_equal(labels, [0, 1, 2, 3, 3])

    def test_empty_and_singleton(self):
        assert connected_components(from_edges(0, [])).shape[0] == 0
        assert num_components(from_edges(1, [])) == 1

    def test_is_connected(self, two_triangles):
        assert is_connected(grid_2d(3, 3))
        assert not is_connected(two_triangles)
        assert is_connected(from_edges(1, []))
        assert is_connected(from_edges(0, []))

    def test_path_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.graphs.build import to_networkx
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(80, 0.015, seed=11)
        assert num_components(g) == nx.number_connected_components(
            to_networkx(g)
        )


class TestQuotientGraph:
    def test_contract_path_pairs(self):
        g = path_graph(6)
        labels = np.asarray([0, 0, 1, 1, 2, 2])
        q = quotient_graph(g, labels)
        assert q.graph.num_vertices == 3
        assert q.graph.num_edges == 2  # 0-1 and 1-2 in the quotient

    def test_multiplicity_counted(self):
        g = cycle_graph(4)
        labels = np.asarray([0, 1, 0, 1])
        q = quotient_graph(g, labels)
        assert q.graph.num_edges == 1
        assert q.edge_multiplicity[0] == 4  # all four edges cross

    def test_representative_is_real_edge(self):
        g = grid_2d(4, 4)
        labels = (np.arange(16) % 2).astype(np.int64)
        q = quotient_graph(g, labels)
        for (a, b), (u, v) in zip(
            q.graph.edge_array(), q.representative_edge
        ):
            assert g.has_edge(int(u), int(v))
            assert {labels[u], labels[v]} == {a, b}

    def test_identity_labels_gives_no_edges_lost(self):
        g = grid_2d(3, 3)
        labels = np.arange(9)
        q = quotient_graph(g, labels)
        assert q.graph.num_edges == g.num_edges

    def test_all_same_label(self):
        g = grid_2d(3, 3)
        q = quotient_graph(g, np.zeros(9, dtype=np.int64))
        assert q.graph.num_vertices == 1
        assert q.graph.num_edges == 0

    def test_label_length_checked(self):
        with pytest.raises(GraphError):
            quotient_graph(path_graph(4), np.zeros(3, dtype=np.int64))

    def test_edgeless_graph(self):
        g = from_edges(4, [])
        q = quotient_graph(g, np.asarray([0, 0, 1, 1]))
        assert q.graph.num_vertices == 2
        assert q.graph.num_edges == 0


class TestCuts:
    def test_cut_mask_alignment(self):
        g = path_graph(4)
        labels = np.asarray([0, 0, 1, 1])
        mask = cut_edge_mask(g, labels)
        np.testing.assert_array_equal(mask, [False, True, False])
        assert count_cut_edges(g, labels) == 1

    def test_no_cut_single_label(self):
        g = complete_graph(5)
        assert count_cut_edges(g, np.zeros(5, dtype=np.int64)) == 0

    def test_all_cut_alternating(self):
        g = path_graph(5)
        labels = np.asarray([0, 1, 0, 1, 0])
        assert count_cut_edges(g, labels) == 4

    def test_length_mismatch(self):
        with pytest.raises(GraphError):
            cut_edge_mask(path_graph(3), np.zeros(2, dtype=np.int64))


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats == {"min": 2.0, "max": 2.0, "mean": 2.0, "std": 0.0}

    def test_empty(self):
        stats = degree_statistics(from_edges(0, []))
        assert stats["mean"] == 0.0
