"""Unit tests for the work-depth cost model and instrumented primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pram.cost_model import CostRecord, WorkDepthCounter, brent_time
from repro.pram.primitives import (
    log2_ceil,
    par_map,
    par_max,
    par_min,
    par_pack,
    par_reduce,
    par_scan,
)


class TestCostRecord:
    def test_sequential_composition(self):
        c = CostRecord(10, 2).then(CostRecord(5, 3))
        assert (c.work, c.depth) == (15, 5)

    def test_parallel_composition(self):
        c = CostRecord(10, 2).alongside(CostRecord(5, 7))
        assert (c.work, c.depth) == (15, 7)

    def test_scaled(self):
        c = CostRecord(3, 2).scaled(4)
        assert (c.work, c.depth) == (12, 8)

    def test_scaled_negative(self):
        with pytest.raises(ParameterError):
            CostRecord(1, 1).scaled(-1)


class TestWorkDepthCounter:
    def test_charge_accumulates_sequentially(self):
        c = WorkDepthCounter()
        c.charge(100, 1)
        c.charge(50, 4)
        assert c.work == 150 and c.depth == 5

    def test_labelled_breakdown(self):
        c = WorkDepthCounter()
        c.charge(10, 1, label="bfs")
        c.charge(20, 2, label="bfs")
        c.charge(5, 1, label="setup")
        assert c.breakdown["bfs"].work == 30
        assert c.breakdown["bfs"].depth == 3
        assert c.breakdown["setup"].work == 5

    def test_parallel_region_max_depth(self):
        children = [WorkDepthCounter(), WorkDepthCounter()]
        children[0].charge(10, 3)
        children[1].charge(20, 7)
        parent = WorkDepthCounter()
        parent.parallel_region(children)
        assert parent.work == 30 and parent.depth == 7

    def test_parallel_region_empty(self):
        c = WorkDepthCounter()
        c.parallel_region([])
        assert c.work == 0 and c.depth == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ParameterError):
            WorkDepthCounter().charge(-1, 0)

    def test_snapshot(self):
        c = WorkDepthCounter()
        c.charge(7, 2)
        snap = c.snapshot()
        assert (snap.work, snap.depth) == (7, 2)


class TestBrent:
    def test_bound_formula(self):
        assert brent_time(1000, 10, 10) == pytest.approx(110.0)

    def test_single_processor_is_work_plus_depth(self):
        assert brent_time(100, 7, 1) == 107.0

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            brent_time(100, 1, 0)
        with pytest.raises(ParameterError):
            brent_time(-1, 1, 1)


class TestPrimitives:
    def test_log2_ceil(self):
        assert log2_ceil(0) == 1
        assert log2_ceil(1) == 1
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10
        assert log2_ceil(1025) == 11

    def test_par_map_cost_and_value(self):
        c = WorkDepthCounter()
        out = par_map(c, lambda a: a * 2, np.arange(8))
        np.testing.assert_array_equal(out, np.arange(8) * 2)
        assert c.work == 8 and c.depth == 1

    def test_par_reduce(self):
        c = WorkDepthCounter()
        assert par_reduce(c, np.arange(10)) == 45.0
        assert c.work == 10 and c.depth == log2_ceil(10)

    def test_par_max_min(self):
        c = WorkDepthCounter()
        arr = np.asarray([3.0, 9.0, 1.0])
        assert par_max(c, arr) == 9.0
        assert par_min(c, arr) == 1.0
        assert c.depth == 2 * log2_ceil(3)

    def test_par_scan_exclusive(self):
        c = WorkDepthCounter()
        out = par_scan(c, np.asarray([3, 1, 4, 1, 5]))
        np.testing.assert_array_equal(out, [0, 3, 4, 8, 9])
        assert c.work == 10

    def test_par_scan_small(self):
        c = WorkDepthCounter()
        np.testing.assert_array_equal(par_scan(c, np.asarray([7])), [0])
        np.testing.assert_array_equal(
            par_scan(c, np.asarray([], dtype=np.int64)), []
        )

    def test_par_pack(self):
        c = WorkDepthCounter()
        arr = np.arange(6)
        mask = arr % 2 == 0
        np.testing.assert_array_equal(par_pack(c, arr, mask), [0, 2, 4])
        assert c.work == 18
