"""Differential conformance: serial ≡ pooled ≡ shared-memory runtime.

The batch runtime's core guarantee is that *where* a decomposition runs
never changes *what* it computes: for every registered method, seed and
graph family, the serial ``decompose()``, the legacy pickling pool
(``decompose_many(executor="process")``) and the shared-memory runtime
(``executor="shared"`` / ``DecompositionPool``) must produce bit-identical
assignment arrays.  Any drift — a worker sampling shifts from a different
stream, a shared-memory view changing dtype or layout, a slim-result
rehydration bug — fails here first.

The suite runs every unweighted method over several families and seeds and
the weighted methods over weighted lifts of the same families, comparing
``center`` plus ``hops`` (unweighted) / ``radius`` (weighted) exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs.delayed import delayed_multisource_bfs, resolve_claims
from repro.bfs.kernels import native_available
from repro.core.engine import decompose, decompose_many
from repro.core.registry import method_names
from repro.core.weighted import WeightedDecomposition
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)
from repro.graphs.weighted import weights_by_name
from repro.runtime import DecompositionPool, DecompositionRequest

SEEDS = (0, 3, 11)
BETA = 0.3

#: name -> unweighted graph; small but structurally diverse (grid structure,
#: the path worst case, a cycle, and a sparse possibly-disconnected ER).
FAMILIES = {
    "grid": grid_2d(8, 8),
    "path": path_graph(40),
    "cycle": cycle_graph(30),
    "er": erdos_renyi(60, 0.08, seed=1),
}

#: Weighted lifts of the same families for the weighted methods.
WEIGHTED_FAMILIES = {
    name: weights_by_name(graph, "uniform:0.5,2.0", seed=7)
    for name, graph in FAMILIES.items()
}


def _assignments(result):
    """The exact arrays conformance is defined over."""
    decomposition = result.decomposition
    if isinstance(decomposition, WeightedDecomposition):
        return decomposition.center, decomposition.radius
    return decomposition.center, decomposition.hops


def _assert_identical(result_a, result_b, context: str):
    center_a, extra_a = _assignments(result_a)
    center_b, extra_b = _assignments(result_b)
    np.testing.assert_array_equal(center_a, center_b, err_msg=context)
    np.testing.assert_array_equal(extra_a, extra_b, err_msg=context)
    assert result_a.trace.method == result_b.trace.method, context


def _conformance_for(graphs: dict, method: str):
    """serial vs process-pool vs shared runtime over families × SEEDS."""
    graph_list = list(graphs.values())
    names = list(graphs)
    serial = decompose_many(
        graph_list, BETA, method=method, seeds=SEEDS, executor="serial"
    )
    pooled = decompose_many(
        graph_list, BETA, method=method, seeds=SEEDS,
        executor="process", max_workers=2,
    )
    shared = decompose_many(
        graph_list, BETA, method=method, seeds=SEEDS,
        executor="shared", max_workers=2,
    )
    for srun, prun, hrun in zip(serial.runs, pooled.runs, shared.runs):
        assert (srun.graph_index, srun.seed) == (prun.graph_index, prun.seed)
        assert (srun.graph_index, srun.seed) == (hrun.graph_index, hrun.seed)
        context = (
            f"method={method} family={names[srun.graph_index]} "
            f"seed={srun.seed}"
        )
        _assert_identical(
            srun.result, prun.result, f"{context} [process pool]"
        )
        _assert_identical(
            srun.result, hrun.result, f"{context} [shared runtime]"
        )


@pytest.mark.parametrize("method", method_names("unweighted"))
def test_unweighted_methods_conform(method):
    _conformance_for(FAMILIES, method)


@pytest.mark.parametrize("method", method_names("weighted"))
def test_weighted_methods_conform(method):
    _conformance_for(WEIGHTED_FAMILIES, method)


def test_direct_pool_conforms_with_serial_across_methods():
    """The DecompositionPool API itself (not just the engine wrapper):
    one persistent pool serving every family, every method, every seed."""
    with DecompositionPool(FAMILIES, max_workers=2) as pool:
        requests = [
            DecompositionRequest(
                graph_key=name, beta=BETA, method=method, seed=seed
            )
            for name in FAMILIES
            for method in method_names("unweighted")
            for seed in SEEDS[:2]
        ]
        results = pool.run(requests)
    for req, result in zip(requests, results):
        serial = decompose(
            FAMILIES[req.graph_key], BETA, method=req.method, seed=req.seed
        )
        _assert_identical(
            result,
            serial,
            f"pool method={req.method} family={req.graph_key} "
            f"seed={req.seed}",
        )


def test_validation_reports_survive_the_pool():
    """validate=True reports computed in workers equal serial ones."""
    serial = decompose(FAMILIES["grid"], BETA, seed=2, validate=True)
    batch = decompose_many(
        FAMILIES["grid"], BETA, seeds=[2], validate=True,
        executor="shared", max_workers=1,
    )
    report = batch.runs[0].result.report
    assert report is not None
    assert report == serial.report


# ---------------------------------------------------------------------------
# python kernel ≡ native kernel
#
# The compiled extension is a second implementation of the same hot path;
# like the executors above, *which kernel ran* must never change *what was
# computed*.  Skipped (not silently passed) when the extension is not built.
# ---------------------------------------------------------------------------
needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled kernel repro.bfs._kernel not built"
)


@needs_native
@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("method", method_names("unweighted"))
def test_kernels_conform_across_methods(method, seed):
    for name, graph in FAMILIES.items():
        python = decompose(
            graph, BETA, method=method, seed=seed, kernel="python"
        )
        native = decompose(
            graph, BETA, method=method, seed=seed, kernel="native"
        )
        _assert_identical(
            python, native,
            f"kernel method={method} family={name} seed={seed}",
        )


@needs_native
@pytest.mark.parametrize("restriction", ["center_mask", "max_round", "both"])
def test_kernels_conform_under_mask_and_cap(restriction):
    """The restricted BFS modes (batched centers, radius-capped growth) take
    different branches in both kernels; every result field must still match,
    including the -1 unowned convention."""
    for name, graph in FAMILIES.items():
        n = graph.num_vertices
        rng = np.random.default_rng(n)
        start = rng.random(n) * 5
        kwargs = {}
        if restriction in ("center_mask", "both"):
            mask = rng.random(n) < 0.25
            mask[int(rng.integers(n))] = True
            kwargs["center_mask"] = mask
        if restriction in ("max_round", "both"):
            kwargs["max_round"] = 3
        python = delayed_multisource_bfs(graph, start, kernel="python", **kwargs)
        native = delayed_multisource_bfs(graph, start, kernel="native", **kwargs)
        context = f"family={name} restriction={restriction}"
        np.testing.assert_array_equal(python.center, native.center, context)
        np.testing.assert_array_equal(
            python.round_claimed, native.round_claimed, context
        )
        np.testing.assert_array_equal(python.hops, native.hops, context)
        assert python.num_rounds == native.num_rounds, context
        assert python.active_rounds == native.active_rounds, context
        assert python.work == native.work, context
        assert python.frontier_sizes == native.frontier_sizes, context


@needs_native
@pytest.mark.parametrize(
    "num_vertices,count",
    [
        # Straddle the `count >= num_vertices` scatter trigger ...
        (2000, 1999),
        (2000, 2000),
        (2000, 2001),
        # ... and the 1024 floor below which the semisort always runs.
        (500, 1023),
        (500, 1024),
        (500, 1025),
    ],
)
def test_resolve_claims_boundaries_across_kernels(num_vertices, count):
    """At the scatter-vs-semisort boundary the python engine switches
    implementation; both sides of the switch and the native kernel must
    produce identical winner sets (coarse keys force exact ties)."""
    rng = np.random.default_rng(num_vertices * 31 + count)
    cand_v = rng.integers(0, num_vertices, count)
    cand_c = rng.integers(0, num_vertices, count)
    tie_key = rng.integers(0, 8, num_vertices) / 8.0
    semisort = resolve_claims(cand_v, cand_c, tie_key, kernel="python")
    chosen = resolve_claims(
        cand_v, cand_c, tie_key, num_vertices=num_vertices, kernel="python"
    )
    native = resolve_claims(
        cand_v, cand_c, tie_key, num_vertices=num_vertices, kernel="native"
    )
    for label, (winners, owners) in (
        ("python path switch", chosen),
        ("native kernel", native),
    ):
        np.testing.assert_array_equal(semisort[0], winners, label)
        np.testing.assert_array_equal(semisort[1], owners, label)


# ---------------------------------------------------------------------------
# backing conformance: memmap graphs decompose identically to in-RAM ones
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def mmap_families(tmp_path_factory):
    """Memmap copies of every unweighted family, kept open for the module."""
    from repro.graphs import save_mmap_graph

    root = tmp_path_factory.mktemp("conformance-mmap")
    wrappers = {
        name: save_mmap_graph(graph, str(root / f"{name}.rgm"))
        for name, graph in FAMILIES.items()
    }
    yield {name: wrapper.graph for name, wrapper in wrappers.items()}
    for wrapper in wrappers.values():
        wrapper.close()


_BACKING_KERNELS = ["python"] + (["native"] if native_available() else [])


@pytest.mark.parametrize("kernel", _BACKING_KERNELS)
@pytest.mark.parametrize("seed", SEEDS[:2])
@pytest.mark.parametrize("method", method_names("unweighted"))
def test_memmap_backing_conforms(method, seed, kernel, mmap_families):
    """A file-backed (memmap) graph must decompose bit-identically to the
    same graph held in RAM, for every method under both kernels — the
    out-of-core substrate may change where arrays live, never answers."""
    from repro.bfs.kernels import use_kernel

    for name, via_file in mmap_families.items():
        context = (
            f"memmap family={name} method={method} seed={seed} "
            f"kernel={kernel}"
        )
        with use_kernel(kernel):
            from_file = decompose(via_file, BETA, method=method, seed=seed)
            from_ram = decompose(
                FAMILIES[name], BETA, method=method, seed=seed
            )
        _assert_identical(from_file, from_ram, context)
        recorded = from_file.trace.extra.get("kernel")
        assert recorded in (kernel, None), context
