"""Tests for the partition facade and the primary (BFS/exact) algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ParameterError
from repro.core.ldd_bfs import partition_bfs, partition_bfs_with_shifts
from repro.core.ldd_exact import partition_exact, partition_exact_with_shifts
from repro.core.partition import PARTITION_METHODS, partition
from repro.core.shifts import sample_shifts
from repro.core.verify import verify_decomposition
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    star_graph,
)

from tests.conftest import assert_valid_partition


class TestPartitionBFS:
    def test_produces_valid_partition(self, medium_grid):
        d, t = partition_bfs(medium_grid, 0.1, seed=0)
        assert_valid_partition(medium_grid, d.center)
        report = verify_decomposition(d)
        assert report.all_invariants_hold()

    def test_reproducible_with_seed(self, small_grid):
        d1, _ = partition_bfs(small_grid, 0.2, seed=42)
        d2, _ = partition_bfs(small_grid, 0.2, seed=42)
        np.testing.assert_array_equal(d1.center, d2.center)

    def test_different_seeds_differ(self, medium_grid):
        d1, _ = partition_bfs(medium_grid, 0.1, seed=1)
        d2, _ = partition_bfs(medium_grid, 0.1, seed=2)
        assert not np.array_equal(d1.center, d2.center)

    def test_radius_bounded_by_delta_max(self, medium_grid):
        d, t = partition_bfs(medium_grid, 0.15, seed=3)
        assert d.max_radius() <= t.delta_max

    def test_trace_records_rounds_and_work(self, small_grid):
        d, t = partition_bfs(small_grid, 0.3, seed=4)
        assert t.rounds >= 1
        assert t.work > 0
        assert t.depth >= t.extra["active_rounds"]
        assert t.method == "bfs-fractional"
        assert sum(t.frontier_sizes) == small_grid.num_vertices

    def test_permutation_tie_break(self, small_grid):
        d, t = partition_bfs(small_grid, 0.2, seed=5, tie_break="permutation")
        assert t.method == "bfs-permutation"
        assert verify_decomposition(d).all_invariants_hold()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            partition_bfs(from_edges(0, []), 0.5)

    def test_mismatched_shifts_rejected(self, small_grid):
        shifts = sample_shifts(5, 0.5, seed=0)
        with pytest.raises(GraphError):
            partition_bfs_with_shifts(small_grid, shifts)

    def test_disconnected_graph_supported(self, two_triangles):
        d, _ = partition_bfs(two_triangles, 0.5, seed=6)
        assert_valid_partition(two_triangles, d.center)
        # No piece can span components.
        labels = d.labels
        assert len(set(labels[:3].tolist()) & set(labels[3:].tolist())) == 0

    def test_single_vertex_graph(self):
        g = from_edges(1, [])
        d, t = partition_bfs(g, 0.5, seed=0)
        assert d.num_pieces == 1
        assert d.max_radius() == 0


class TestBFSExactEquivalence:
    """Theorem-level invariant: both implementations of the assignment rule
    produce identical output on identical shifts."""

    @pytest.mark.parametrize("beta", [0.05, 0.2, 0.5, 0.9])
    def test_equivalence_across_betas(self, beta):
        g = grid_2d(9, 9)
        shifts = sample_shifts(g.num_vertices, beta, seed=int(beta * 100))
        d_bfs, _ = partition_bfs_with_shifts(g, shifts)
        d_exact, _ = partition_exact_with_shifts(g, shifts)
        np.testing.assert_array_equal(d_bfs.center, d_exact.center)
        np.testing.assert_array_equal(d_bfs.hops, d_exact.hops)

    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_on_random_graphs(self, seed):
        g = erdos_renyi(45, 0.1, seed=seed)
        shifts = sample_shifts(45, 0.25, seed=seed)
        d_bfs, _ = partition_bfs_with_shifts(g, shifts)
        d_exact, _ = partition_exact_with_shifts(g, shifts)
        np.testing.assert_array_equal(d_bfs.center, d_exact.center)

    def test_equivalence_permutation_mode(self):
        g = grid_2d(7, 7)
        shifts = sample_shifts(49, 0.3, seed=8, mode="permutation")
        d_bfs, _ = partition_bfs_with_shifts(g, shifts)
        d_exact, _ = partition_exact_with_shifts(g, shifts)
        np.testing.assert_array_equal(d_bfs.center, d_exact.center)

    def test_exact_standalone(self, small_grid):
        d, t = partition_exact(small_grid, 0.2, seed=9)
        assert t.method == "exact-fractional"
        assert verify_decomposition(d).all_invariants_hold()


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestFacade:
    """The deprecated partition() facade keeps its historical behaviour.

    The facade warns on every call (asserted in TestFacadeDeprecation);
    these tests filter the warning to check behaviour in isolation.
    """

    @pytest.mark.parametrize("method", sorted(PARTITION_METHODS))
    def test_every_method_produces_valid_output(self, method):
        g = grid_2d(8, 8)
        result = partition(g, 0.3, method=method, seed=11, validate=True)
        assert result.report is not None
        assert result.report.all_invariants_hold()
        assert result.trace.beta == pytest.approx(0.3)

    def test_unknown_method(self, small_grid):
        with pytest.raises(ParameterError, match="unknown method"):
            partition(small_grid, 0.5, method="nope")

    def test_summary_merges_trace(self, small_grid):
        result = partition(small_grid, 0.4, seed=12)
        s = result.summary()
        assert s["method"] == "bfs-fractional"
        assert "rounds" in s and "cut_fraction" in s

    def test_validate_off_by_default(self, small_grid):
        assert partition(small_grid, 0.4, seed=13).report is None


class TestFacadeDeprecation:
    def test_partition_emits_deprecation_warning(self, small_grid):
        with pytest.warns(DeprecationWarning, match="decompose"):
            partition(small_grid, 0.3, seed=4)

    def test_warned_result_identical_to_decompose(self, small_grid):
        from repro.core.engine import decompose

        with pytest.warns(DeprecationWarning):
            old = partition(
                small_grid, 0.3, method="bfs", seed=4, validate=True
            )
        new = decompose(
            small_grid, 0.3, method="bfs", seed=4, validate=True
        )
        np.testing.assert_array_equal(
            old.decomposition.center, new.decomposition.center
        )
        np.testing.assert_array_equal(
            old.decomposition.hops, new.decomposition.hops
        )
        assert old.summary() == new.summary()
        assert old.report == new.report


class TestStructuralExtremes:
    def test_complete_graph_few_pieces(self):
        # Diameter 1: the first two wakers partition everything.
        g = complete_graph(30)
        d, _ = partition_bfs(g, 0.2, seed=14)
        assert d.num_pieces <= 4
        assert d.max_radius() <= 1

    def test_star_center_hop_at_most_two(self):
        g = star_graph(40)
        d, _ = partition_bfs(g, 0.3, seed=15)
        assert d.max_radius() <= 2

    def test_path_pieces_are_intervals(self):
        g = path_graph(60)
        d, _ = partition_bfs(g, 0.3, seed=16)
        labels = d.labels
        # Pieces of a path decomposition must be contiguous intervals
        # (connectivity inside the path forces it).
        changes = int((labels[1:] != labels[:-1]).sum())
        assert changes == d.num_pieces - 1
