"""Tests for the Section 6 weighted extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.core.weighted import partition_weighted
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.weighted import uniform_weights, weighted_from_edges


class TestPartitionWeighted:
    def test_valid_partition_unit_weights(self):
        g = uniform_weights(grid_2d(12, 12))
        d, t = partition_weighted(g, 0.1, seed=0)
        n = g.num_vertices
        assert d.center.shape[0] == n
        np.testing.assert_array_equal(d.center[d.center], d.center)
        assert np.all(d.radius >= 0)

    def test_radius_bounded_by_delta_max(self):
        g = uniform_weights(grid_2d(10, 10), 2.0)
        d, t = partition_weighted(g, 0.2, seed=1)
        assert d.max_radius() <= t.delta_max + 1e-9

    def test_heavy_edge_cut_more_often_than_light(self):
        # Lemma 4.4 with c = w: cut probability scales with edge weight.
        rng = np.random.default_rng(2)
        g0 = grid_2d(15, 15)
        edges = g0.edge_array()
        # Alternate light (0.2) and heavy (5.0) edges.
        weights = np.where(np.arange(edges.shape[0]) % 2 == 0, 0.2, 5.0)
        g = weighted_from_edges(g0.num_vertices, edges, weights)
        light_cut = heavy_cut = 0
        light_total = (weights == 0.2).sum()
        heavy_total = (weights == 5.0).sum()
        for seed in range(8):
            d, _ = partition_weighted(g, 0.15, seed=seed)
            labels = d.labels
            cross = labels[edges[:, 0]] != labels[edges[:, 1]]
            light_cut += int((cross & (weights == 0.2)).sum())
            heavy_cut += int((cross & (weights == 5.0)).sum())
        assert heavy_cut / heavy_total > light_cut / max(light_total, 1)

    def test_reduces_to_unweighted_statistics(self):
        # With unit weights the weighted cut fraction equals the edge cut
        # fraction.
        g = uniform_weights(grid_2d(10, 10))
        d, _ = partition_weighted(g, 0.2, seed=3)
        assert d.cut_weight_fraction() == pytest.approx(
            d.num_cut_edges() / g.num_edges
        )

    def test_labels_dense(self):
        g = uniform_weights(path_graph(20))
        d, _ = partition_weighted(g, 0.3, seed=4)
        labels = d.labels
        assert labels.min() == 0
        assert labels.max() == d.num_pieces - 1

    def test_trace_notes_uncontrolled_depth(self):
        g = uniform_weights(path_graph(10))
        _, t = partition_weighted(g, 0.3, seed=5)
        assert "Section 6" in t.extra["note"]
        assert t.method == "weighted-dijkstra"

    def test_empty_graph_rejected(self):
        from repro.graphs.build import empty_graph

        with pytest.raises(GraphError):
            partition_weighted(uniform_weights(empty_graph(0)), 0.5)
