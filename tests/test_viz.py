"""Tests for palette and grid rendering (Figure 1 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.core.ldd_bfs import partition_bfs
from repro.graphs.generators import grid_2d
from repro.viz.grid_render import (
    labels_to_image,
    render_grid_ascii,
    render_grid_ppm,
)
from repro.viz.palette import distinct_colors, hsv_to_rgb


class TestPalette:
    def test_shapes_and_determinism(self):
        a = distinct_colors(10)
        b = distinct_colors(10)
        assert a.shape == (10, 3) and a.dtype == np.uint8
        np.testing.assert_array_equal(a, b)

    def test_distinctness(self):
        colors = distinct_colors(30)
        uniq = np.unique(colors, axis=0)
        assert uniq.shape[0] == 30

    def test_adjacent_colors_far_apart(self):
        colors = distinct_colors(12).astype(np.int64)
        gaps = np.abs(colors[1:] - colors[:-1]).sum(axis=1)
        assert gaps.min() > 40  # L1 distance in RGB space

    def test_zero_and_negative(self):
        assert distinct_colors(0).shape == (0, 3)
        with pytest.raises(ParameterError):
            distinct_colors(-1)

    def test_hsv_primaries(self):
        rgb = hsv_to_rgb(np.asarray([0.0, 1 / 3, 2 / 3]), 1.0, 1.0)
        np.testing.assert_array_equal(rgb[0], [255, 0, 0])
        np.testing.assert_array_equal(rgb[1], [0, 255, 0])
        np.testing.assert_array_equal(rgb[2], [0, 0, 255])


class TestLabelsToImage:
    def test_shape(self):
        labels = np.zeros(12, dtype=np.int64)
        img = labels_to_image(labels, 3, 4)
        assert img.shape == (3, 4, 3)

    def test_same_label_same_color(self):
        labels = np.asarray([0, 0, 1, 1])
        img = labels_to_image(labels, 2, 2)
        np.testing.assert_array_equal(img[0, 0], img[0, 1])
        assert not np.array_equal(img[0, 0], img[1, 0])

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            labels_to_image(np.zeros(5, dtype=np.int64), 2, 2)


class TestPPM:
    def test_file_format(self, tmp_path):
        g = grid_2d(10, 10)
        d, _ = partition_bfs(g, 0.3, seed=0)
        out = render_grid_ppm(d.labels, 10, 10, tmp_path / "x.ppm")
        data = out.read_bytes()
        assert data.startswith(b"P6\n10 10\n255\n")
        header_len = len(b"P6\n10 10\n255\n")
        assert len(data) == header_len + 10 * 10 * 3

    def test_scaling(self, tmp_path):
        labels = np.asarray([0, 1, 2, 3])
        out = render_grid_ppm(labels, 2, 2, tmp_path / "s.ppm", scale=4)
        data = out.read_bytes()
        assert b"8 8" in data.split(b"\n", 2)[1]

    def test_bad_scale(self, tmp_path):
        with pytest.raises(ParameterError):
            render_grid_ppm(np.zeros(4, dtype=np.int64), 2, 2, tmp_path / "b.ppm", scale=0)


class TestAscii:
    def test_dimensions(self):
        labels = np.arange(16) % 3
        art = render_grid_ascii(labels, 4, 4)
        lines = art.split("\n")
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines)

    def test_downsampling(self):
        labels = np.zeros(200 * 200, dtype=np.int64)
        art = render_grid_ascii(labels, 200, 200, max_size=50)
        lines = art.split("\n")
        assert len(lines) <= 100

    def test_same_cluster_same_glyph(self):
        labels = np.asarray([0, 0, 1, 1])
        art = render_grid_ascii(labels, 2, 2)
        rows = art.split("\n")
        assert rows[0][0] == rows[0][1]
        assert rows[0][0] != rows[1][0]
