"""Unit tests for the BFS engines (sequential, frontier, direction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.bfs.direction import direction_optimizing_bfs
from repro.bfs.frontier import frontier_bfs, gather_frontier_arcs
from repro.bfs.sequential import (
    bfs,
    eccentricity,
    graph_diameter_lb,
    multi_source_bfs,
)
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    hypercube,
    path_graph,
)


class TestSequentialBFS:
    def test_path_distances(self):
        res = bfs(path_graph(5), 0)
        np.testing.assert_array_equal(res.dist, [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(res.parent, [-1, 0, 1, 2, 3])

    def test_source_out_of_range(self):
        with pytest.raises(ParameterError):
            bfs(path_graph(3), 5)

    def test_unreached_marked(self, two_triangles):
        res = bfs(two_triangles, 0)
        assert np.all(res.dist[:3] >= 0)
        assert np.all(res.dist[3:] == -1)
        assert np.all(res.source[3:] == -1)

    def test_multi_source(self):
        g = path_graph(7)
        res = multi_source_bfs(g, np.asarray([0, 6]))
        np.testing.assert_array_equal(res.dist, [0, 1, 2, 3, 2, 1, 0])
        assert res.source[1] == 0 and res.source[5] == 6

    def test_work_counts_every_arc_once(self):
        g = grid_2d(6, 6)
        res = bfs(g, 0)
        assert res.work == g.num_arcs

    def test_num_rounds_is_levels(self):
        res = bfs(path_graph(4), 0)
        assert res.num_rounds == 4  # distances 0..3

    def test_parent_is_one_closer(self):
        g = erdos_renyi(60, 0.08, seed=1)
        res = bfs(g, 0)
        for v in range(60):
            if res.dist[v] > 0:
                assert res.dist[res.parent[v]] == res.dist[v] - 1

    def test_eccentricity(self):
        assert eccentricity(path_graph(9), 0) == 8
        assert eccentricity(path_graph(9), 4) == 4
        assert eccentricity(complete_graph(5), 2) == 1

    def test_diameter_lb(self):
        assert graph_diameter_lb(path_graph(10)) == 9
        assert graph_diameter_lb(cycle_graph(10)) == 5
        assert graph_diameter_lb(from_edges(1, [])) == 0
        assert graph_diameter_lb(from_edges(0, [])) == 0


class TestGatherFrontierArcs:
    def test_gather_matches_adjacency(self):
        g = grid_2d(4, 4)
        frontier = np.asarray([0, 5, 15])
        src, dst = gather_frontier_arcs(g, frontier)
        expected_src = np.concatenate(
            [np.full(g.degree(v), v) for v in frontier]
        )
        expected_dst = np.concatenate([g.neighbors(v) for v in frontier])
        np.testing.assert_array_equal(src, expected_src)
        np.testing.assert_array_equal(dst, expected_dst)

    def test_empty_frontier(self):
        g = path_graph(3)
        src, dst = gather_frontier_arcs(g, np.asarray([], dtype=np.int64))
        assert src.size == 0 and dst.size == 0

    def test_isolated_vertex_frontier(self):
        g = from_edges(3, [(0, 1)])
        src, dst = gather_frontier_arcs(g, np.asarray([2]))
        assert src.size == 0


class TestFrontierBFS:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: path_graph(20),
            lambda: cycle_graph(15),
            lambda: grid_2d(7, 9),
            lambda: hypercube(5),
            lambda: erdos_renyi(80, 0.05, seed=3),
            lambda: complete_graph(9),
        ],
    )
    def test_distances_match_sequential(self, graph_fn):
        g = graph_fn()
        seq = bfs(g, 0)
        par = frontier_bfs(g, np.asarray([0]))
        np.testing.assert_array_equal(seq.dist, par.dist)

    def test_multi_source_distances(self):
        g = grid_2d(6, 6)
        sources = np.asarray([0, 35])
        seq = multi_source_bfs(g, sources)
        par = frontier_bfs(g, sources)
        np.testing.assert_array_equal(seq.dist, par.dist)

    def test_deterministic_smallest_source_claims(self):
        g = path_graph(5)
        res = frontier_bfs(g, np.asarray([0, 4]))
        # middle vertex 2 is tied; source 0's wave wins via smaller parent id
        assert res.source[2] == 0

    def test_frontier_sizes_sum_to_reached(self):
        g = grid_2d(5, 5)
        res = frontier_bfs(g, np.asarray([0]))
        assert sum(res.frontier_sizes) == g.num_vertices
        assert res.num_rounds == len(res.frontier_sizes)

    def test_max_rounds_truncation(self):
        g = path_graph(10)
        res = frontier_bfs(g, np.asarray([0]), max_rounds=3)
        assert res.dist.max() == 3
        assert np.all(res.dist[5:] == -1)

    def test_work_counts_frontier_arcs(self):
        g = grid_2d(5, 5)
        res = frontier_bfs(g, np.asarray([0]))
        assert res.work == g.num_arcs  # every vertex enters one frontier

    def test_parent_consistency(self):
        g = erdos_renyi(70, 0.06, seed=9)
        res = frontier_bfs(g, np.asarray([0]))
        for v in range(70):
            if res.dist[v] > 0:
                assert res.dist[res.parent[v]] == res.dist[v] - 1
                assert g.has_edge(int(res.parent[v]), v)

    def test_bad_sources(self):
        with pytest.raises(ParameterError):
            frontier_bfs(path_graph(3), np.asarray([7]))


class TestDirectionOptimizingBFS:
    @pytest.mark.parametrize(
        "graph_fn",
        [
            lambda: grid_2d(8, 8),
            lambda: hypercube(6),
            lambda: erdos_renyi(150, 0.05, seed=4),
            lambda: complete_graph(12),
            lambda: path_graph(30),
        ],
    )
    def test_distances_match_plain_bfs(self, graph_fn):
        g = graph_fn()
        seq = bfs(g, 0)
        opt = direction_optimizing_bfs(g, 0)
        np.testing.assert_array_equal(seq.dist, opt.dist)

    def test_bottom_up_kicks_in_on_fat_frontier(self):
        # A hypercube's mid-levels hold most vertices: the classic shape
        # where the frontier's arc volume crosses the Beamer threshold.
        g = hypercube(8)
        res = direction_optimizing_bfs(g, 0)
        assert "bu" in res.directions

    def test_stays_top_down_with_tiny_alpha(self):
        # Small alpha raises the switch threshold m_unexplored/alpha beyond
        # reach, pinning the search to top-down rounds.
        g = path_graph(40)
        res = direction_optimizing_bfs(g, 0, alpha=1e-9)
        assert set(res.directions) == {"td"}

    def test_parent_valid_in_bottom_up_rounds(self):
        g = hypercube(6)
        res = direction_optimizing_bfs(g, 0)
        for v in range(g.num_vertices):
            if res.dist[v] > 0:
                assert g.has_edge(int(res.parent[v]), v)
                assert res.dist[res.parent[v]] == res.dist[v] - 1

    def test_bad_params(self):
        with pytest.raises(ParameterError):
            direction_optimizing_bfs(path_graph(3), 0, alpha=0)
        with pytest.raises(ParameterError):
            direction_optimizing_bfs(path_graph(3), np.asarray([9]))
