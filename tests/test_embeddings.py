"""Tests for hierarchical decompositions and HST embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ParameterError
from repro.embeddings.distortion import measure_distortion
from repro.embeddings.hierarchy import Hierarchy, hierarchical_decomposition
from repro.embeddings.hst import build_hst
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph


class TestHierarchy:
    def test_structure_valid(self, medium_grid):
        h = hierarchical_decomposition(medium_grid, seed=0)
        assert h.num_vertices == medium_grid.num_vertices
        # Level 0 singletons, top level one piece (connected graph).
        pieces = h.pieces_per_level()
        assert pieces[0] == medium_grid.num_vertices
        assert pieces[-1] == 1
        # Monotone coarsening.
        assert pieces == sorted(pieces, reverse=True)

    def test_laminarity_enforced(self):
        with pytest.raises(GraphError, match="laminar"):
            Hierarchy(
                labels=[
                    np.asarray([0, 1, 2, 3]),
                    np.asarray([0, 0, 1, 1]),
                    np.asarray([0, 1, 0, 1]),  # breaks the level-1 merge
                ],
                scale=[1.0, 2.0, 4.0],
            )

    def test_scales_doubling(self, small_grid):
        h = hierarchical_decomposition(small_grid, seed=1)
        for lo, hi in zip(h.scale[:-1], h.scale[1:]):
            assert hi == pytest.approx(2 * lo)

    def test_disconnected_top_level(self, two_triangles):
        h = hierarchical_decomposition(two_triangles, seed=2)
        assert h.pieces_per_level()[-1] == 2

    def test_separation_level_basics(self, small_grid):
        h = hierarchical_decomposition(small_grid, seed=3)
        # A vertex joins itself at level 0.
        sep = h.separation_level(np.asarray([5]), np.asarray([5]))
        assert sep[0] == 0
        # Distinct vertices separate strictly above level 0.
        sep2 = h.separation_level(np.asarray([0]), np.asarray([99]))
        assert 0 < sep2[0] < h.num_levels

    def test_separation_level_cross_component(self, two_triangles):
        h = hierarchical_decomposition(two_triangles, seed=4)
        sep = h.separation_level(np.asarray([0]), np.asarray([3]))
        assert sep[0] == h.num_levels

    def test_bad_params(self, small_grid):
        with pytest.raises(ParameterError):
            hierarchical_decomposition(small_grid, beta_max=1.0)
        with pytest.raises(ParameterError):
            hierarchical_decomposition(small_grid, radius_constant=0.0)
        with pytest.raises(GraphError):
            hierarchical_decomposition(from_edges(0, []))


class TestHST:
    def test_distance_metric_axioms(self, small_grid):
        h = hierarchical_decomposition(small_grid, seed=5)
        hst = build_hst(h)
        rng = np.random.default_rng(0)
        us = rng.integers(0, 100, size=30)
        vs = rng.integers(0, 100, size=30)
        ws = rng.integers(0, 100, size=30)
        d_uv = hst.distance(us, vs)
        d_vu = hst.distance(vs, us)
        np.testing.assert_allclose(d_uv, d_vu)  # symmetry
        assert np.all(hst.distance(us, us) == 0.0)  # identity
        # Triangle inequality (tree metrics satisfy it exactly).
        d_uw = hst.distance(us, ws)
        d_wv = hst.distance(ws, vs)
        assert np.all(d_uv <= d_uw + d_wv + 1e-9)

    def test_distance_increases_with_separation_level(self, small_grid):
        h = hierarchical_decomposition(small_grid, seed=6)
        hst = build_hst(h)
        # Corner-to-corner separates higher than neighbours, so is farther.
        near = hst.distance(0, 1)[0]
        far = hst.distance(0, 99)[0]
        assert far >= near

    def test_cross_component_infinite(self, two_triangles):
        h = hierarchical_decomposition(two_triangles, seed=7)
        hst = build_hst(h)
        assert np.isinf(hst.distance(0, 3)[0])

    def test_all_pairs_sample(self, small_grid):
        h = hierarchical_decomposition(small_grid, seed=8)
        hst = build_hst(h)
        pairs = np.asarray([[0, 1], [2, 50], [99, 0]])
        d = hst.all_pairs_sample(pairs)
        assert d.shape == (3,)
        np.testing.assert_allclose(
            d, hst.distance(pairs[:, 0], pairs[:, 1])
        )

    def test_shape_mismatch(self, small_grid):
        hst = build_hst(hierarchical_decomposition(small_grid, seed=9))
        with pytest.raises(ParameterError):
            hst.distance(np.asarray([0, 1]), np.asarray([0]))


class TestDistortion:
    def test_dominates_for_most_pairs(self, medium_grid):
        h = hierarchical_decomposition(medium_grid, seed=10)
        hst = build_hst(h)
        rep = measure_distortion(medium_grid, hst, num_sources=5, seed=11)
        assert rep.num_pairs > 0
        assert rep.mean_ratio >= 1.0
        # The hierarchy's probabilistic radius bound keeps contractions rare.
        assert rep.contraction_fraction < 0.2

    def test_path_graph_distortion_finite(self):
        g = path_graph(64)
        h = hierarchical_decomposition(g, seed=12)
        rep = measure_distortion(g, build_hst(h), num_sources=4, seed=13)
        assert np.isfinite(rep.mean_ratio)
        assert rep.max_ratio >= rep.median_ratio

    def test_bad_num_sources(self, small_grid):
        hst = build_hst(hierarchical_decomposition(small_grid, seed=14))
        with pytest.raises(ParameterError):
            measure_distortion(small_grid, hst, num_sources=0)

    def test_single_vertex_graph(self):
        g = from_edges(1, [])
        h = hierarchical_decomposition(g, seed=15)
        rep = measure_distortion(g, build_hst(h), num_sources=1, seed=16)
        assert rep.num_pairs == 0
