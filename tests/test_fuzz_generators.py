"""Property-based fuzz: every generator family × engine invariants.

Hypothesis draws a graph family from *every* registered generator (with
family-appropriate parameters), a β, a method and a seed, and asserts the
engine-level contract on the result:

- ``verify_decomposition`` deterministic invariants hold (total partition,
  connected pieces, hop consistency) for every method on every family;
- piece radii respect the empirical ``O(log n / β)`` bound — checked
  against the Lemma 4.2 tail bound ``(d+1)·ln n / β`` at ``d = 3``, whose
  failure probability ``n^{-3}`` is negligible even over thousands of
  drawn examples, plus the shift certificate ``δ_max`` when the method
  records one.

``derandomize=True`` keeps the drawn (graph, seed) pairs fixed from run to
run — the bound is probabilistic over seeds, so CI must replay the same
seeds rather than gamble on fresh ones.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import decompose
from repro.core.theory import whp_radius_bound
from repro.graphs.generators import (
    GENERATORS,
    barabasi_albert,
    binary_tree,
    caterpillar,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    grid_3d,
    hypercube,
    path_graph,
    random_regular,
    star_graph,
    stochastic_block_model,
    torus_2d,
)

COMMON = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Hop-count methods whose radius the log n / β bound is stated for.
RADIUS_METHODS = ("bfs", "permutation", "exact")


@st.composite
def generated_graphs(draw):
    """A graph drawn from a random generator family with valid parameters."""
    family = draw(st.sampled_from(sorted(GENERATORS)))
    seed = draw(st.integers(0, 2**16))
    if family == "path":
        return path_graph(draw(st.integers(2, 60)))
    if family == "cycle":
        return cycle_graph(draw(st.integers(3, 60)))
    if family == "complete":
        return complete_graph(draw(st.integers(2, 16)))
    if family == "star":
        return star_graph(draw(st.integers(2, 40)))
    if family == "grid":
        return grid_2d(draw(st.integers(2, 8)), draw(st.integers(2, 8)))
    if family == "torus":
        return torus_2d(draw(st.integers(3, 8)), draw(st.integers(3, 8)))
    if family == "grid3d":
        return grid_3d(
            draw(st.integers(2, 4)),
            draw(st.integers(2, 4)),
            draw(st.integers(2, 4)),
        )
    if family == "btree":
        return binary_tree(draw(st.integers(1, 5)))
    if family == "caterpillar":
        return caterpillar(
            draw(st.integers(2, 12)), draw(st.integers(1, 4))
        )
    if family == "hypercube":
        return hypercube(draw(st.integers(1, 6)))
    if family == "er":
        return erdos_renyi(
            draw(st.integers(2, 50)),
            draw(st.floats(0.02, 0.5)),
            seed=seed,
        )
    if family == "regular":
        n = draw(st.integers(4, 30))
        d = draw(st.integers(2, min(5, n - 1)))
        if (n * d) % 2:
            n += 1
        return random_regular(n, d, seed=seed)
    if family == "ba":
        n = draw(st.integers(3, 40))
        return barabasi_albert(n, draw(st.integers(1, min(3, n - 1))), seed=seed)
    if family == "sbm":
        k = draw(st.integers(2, 4))
        sizes = [draw(st.integers(3, 10)) for _ in range(k)]
        return stochastic_block_model(
            sizes, p_in=0.6, p_out=0.05, seed=seed
        )
    raise AssertionError(f"strategy missing for generator {family!r}")


@COMMON
@given(
    graph=generated_graphs(),
    beta=st.floats(0.05, 0.9),
    seed=st.integers(0, 2**31 - 1),
    method=st.sampled_from(("bfs", "permutation", "exact", "sequential")),
)
def test_engine_invariants_on_all_families(graph, beta, seed, method):
    """Every family × method: the deterministic invariants must hold."""
    result = decompose(graph, beta, method=method, seed=seed, validate=True)
    assert result.report is not None
    assert result.report.all_invariants_hold()
    labels = result.decomposition.labels
    assert labels.shape[0] == graph.num_vertices
    assert np.all(labels >= 0)


@COMMON
@given(
    graph=generated_graphs(),
    beta=st.floats(0.1, 0.9),
    seed=st.integers(0, 2**31 - 1),
    method=st.sampled_from(RADIUS_METHODS),
)
def test_empirical_radius_bound_on_all_families(graph, beta, seed, method):
    """Radii stay within the Lemma 4.2 tail bound (d=3) and within δ_max."""
    result = decompose(graph, beta, method=method, seed=seed)
    n = graph.num_vertices
    radius = result.decomposition.max_radius()
    bound = whp_radius_bound(max(n, 2), beta, d=3.0)
    assert radius <= bound + 1, (
        f"radius {radius} exceeds O(log n / beta) bound {bound:.2f} "
        f"(n={n}, beta={beta}, method={method})"
    )
    delta_max = result.trace.delta_max
    if not math.isnan(delta_max):
        # The shift certificate is the sharper per-run bound.
        assert radius <= delta_max + 1e-9
