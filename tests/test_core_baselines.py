"""Tests for the baseline and ablation decomposition methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.core.ldd_blelloch import partition_blelloch
from repro.core.ldd_sequential import partition_sequential
from repro.core.ldd_uniform import partition_uniform
from repro.core.verify import verify_decomposition
from repro.graphs.build import from_edges
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)

from tests.conftest import assert_valid_partition


class TestSequentialBallGrowing:
    def test_valid_partition(self, medium_grid):
        d, t = partition_sequential(medium_grid, 0.2, seed=0)
        assert_valid_partition(medium_grid, d.center)
        assert verify_decomposition(d).all_invariants_hold()

    def test_cut_bound_holds_in_expectation_style(self, medium_grid):
        # The stop rule is deterministic: per ball, boundary <= beta *
        # (interior + 1), so total cut <= beta * (m + #balls).
        beta = 0.3
        d, t = partition_sequential(medium_grid, beta, seed=1)
        m = medium_grid.num_edges
        assert d.num_cut_edges() <= beta * (m + d.num_pieces) + 1e-9

    def test_path_has_long_sequential_chain(self):
        # The dependency chain on a path is Θ(n) — the paper's motivating
        # bottleneck for parallelisation.
        g = path_graph(300)
        d, t = partition_sequential(g, 0.2, seed=2)
        assert t.sequential_chain >= 150
        assert t.method == "sequential-ball-growing"

    def test_deterministic_start_order(self, small_grid):
        d1, _ = partition_sequential(
            small_grid, 0.3, seed=3, randomize_starts=False
        )
        d2, _ = partition_sequential(
            small_grid, 0.4, seed=99, randomize_starts=False
        )
        # Same deterministic scan order: first ball centered at vertex 0.
        assert d1.center[0] == 0 and d2.center[0] == 0

    def test_complete_graph_one_ball(self):
        g = complete_graph(20)
        d, t = partition_sequential(g, 0.3, seed=4)
        assert d.num_pieces == 1
        assert t.extra["num_balls"] == 1

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            partition_sequential(from_edges(0, []), 0.5)

    def test_work_is_total_arcs(self, small_grid):
        _, t = partition_sequential(small_grid, 0.3, seed=5)
        assert t.work == small_grid.num_arcs


class TestBlellochBaseline:
    def test_valid_partition(self, medium_grid):
        d, t = partition_blelloch(medium_grid, 0.1, seed=0)
        assert_valid_partition(medium_grid, d.center)
        assert verify_decomposition(d).all_invariants_hold()

    def test_iterations_logarithmic(self, medium_grid):
        _, t = partition_blelloch(medium_grid, 0.1, seed=1)
        n = medium_grid.num_vertices
        assert t.extra["iterations"] <= np.ceil(np.log2(n)) + 2

    def test_rounds_exceed_single_bfs(self):
        # The iteration loop pays a repeated-restart round cost; on a path
        # it needs strictly more rounds than a single shifted BFS.
        from repro.core.ldd_bfs import partition_bfs

        g = grid_2d(15, 15)
        _, t_mpx = partition_bfs(g, 0.1, seed=2)
        _, t_bgkmpt = partition_blelloch(g, 0.1, seed=2)
        assert t_bgkmpt.rounds >= t_mpx.rounds * 0.5  # same order at least
        assert t_bgkmpt.extra["iterations"] >= 1

    def test_disconnected(self, two_triangles):
        d, _ = partition_blelloch(two_triangles, 0.5, seed=3)
        assert_valid_partition(two_triangles, d.center)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            partition_blelloch(from_edges(0, []), 0.5)


class TestUniformAblation:
    def test_valid_partition(self, medium_grid):
        d, t = partition_uniform(medium_grid, 0.1, seed=0)
        assert_valid_partition(medium_grid, d.center)
        assert verify_decomposition(d).all_invariants_hold()
        assert t.method == "bfs-uniform-shifts"
        assert "shift_range" in t.extra

    def test_worse_cut_than_exponential_at_scale(self):
        # The ablation's point: uniform shifts cut more edges on average.
        from repro.core.ldd_bfs import partition_bfs

        g = grid_2d(30, 30)
        cuts_exp, cuts_uni = [], []
        for seed in range(5):
            d_e, _ = partition_bfs(g, 0.1, seed=seed)
            d_u, _ = partition_uniform(g, 0.1, seed=seed)
            cuts_exp.append(d_e.cut_fraction())
            cuts_uni.append(d_u.cut_fraction())
        assert np.mean(cuts_uni) > np.mean(cuts_exp)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            partition_uniform(from_edges(0, []), 0.5)
