"""Unit tests for rooted forests and LCA indexing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ParameterError
from repro.bfs.sequential import bfs
from repro.core.ldd_bfs import partition_bfs
from repro.graphs.generators import binary_tree, grid_2d, path_graph
from repro.trees.lca import LCAIndex
from repro.trees.structure import RootedForest, bfs_forest_from_decomposition


def path_forest(n: int) -> RootedForest:
    """0 <- 1 <- 2 <- ... <- n-1 chain rooted at 0."""
    parent = np.arange(-1, n - 1)
    return RootedForest.from_parents(parent)


class TestRootedForest:
    def test_depths_on_chain(self):
        f = path_forest(5)
        np.testing.assert_array_equal(f.depth, [0, 1, 2, 3, 4])

    def test_roots_and_is_tree(self):
        f = path_forest(4)
        np.testing.assert_array_equal(f.roots(), [0])
        assert f.is_tree()
        two = RootedForest.from_parents(np.asarray([-1, 0, -1, 2]))
        assert not two.is_tree()
        assert two.num_edges() == 2

    def test_cycle_detected(self):
        with pytest.raises(GraphError, match="cycle"):
            RootedForest.from_parents(np.asarray([1, 2, 0]))

    def test_self_parent_rejected(self):
        with pytest.raises(GraphError, match="self-parent"):
            RootedForest.from_parents(np.asarray([0]))

    def test_out_of_range_parent(self):
        with pytest.raises(GraphError):
            RootedForest.from_parents(np.asarray([5]))

    def test_weighted_depth(self):
        parent = np.asarray([-1, 0, 1])
        weight = np.asarray([0.0, 2.0, 3.0])
        f = RootedForest(parent=parent, edge_weight=weight)
        np.testing.assert_allclose(f.weighted_depth(), [0.0, 2.0, 5.0])

    def test_topological_order_parents_first(self):
        f = RootedForest.from_parents(np.asarray([-1, 0, 0, 1, 1, 2]))
        order = f.topological_order()
        pos = np.empty(6, dtype=np.int64)
        pos[order] = np.arange(6)
        for v in range(6):
            if f.parent[v] != -1:
                assert pos[f.parent[v]] < pos[v]

    def test_to_graph(self):
        f = RootedForest.from_parents(np.asarray([-1, 0, 0]))
        g = f.to_graph()
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_path_to_root(self):
        f = path_forest(4)
        assert f.path_to_root(3) == [3, 2, 1, 0]
        assert f.path_to_root(0) == [0]


class TestBFSForestFromDecomposition:
    def test_structure_matches_pieces(self, medium_grid):
        d, _ = partition_bfs(medium_grid, 0.15, seed=0)
        f = bfs_forest_from_decomposition(d)
        # Depth in the forest equals the recorded hop distances.
        np.testing.assert_array_equal(f.depth, d.hops)
        # Roots are exactly the centers.
        np.testing.assert_array_equal(np.sort(f.roots()), d.centers)

    def test_parents_stay_in_piece(self, medium_grid):
        d, _ = partition_bfs(medium_grid, 0.2, seed=1)
        f = bfs_forest_from_decomposition(d)
        child = np.flatnonzero(f.parent != -1)
        np.testing.assert_array_equal(
            d.center[child], d.center[f.parent[child]]
        )

    def test_parents_are_graph_edges(self, small_grid):
        d, _ = partition_bfs(small_grid, 0.3, seed=2)
        f = bfs_forest_from_decomposition(d)
        for v in np.flatnonzero(f.parent != -1):
            assert small_grid.has_edge(int(v), int(f.parent[v]))


class TestLCAIndex:
    def test_chain_lca(self):
        f = path_forest(6)
        idx = LCAIndex(f)
        assert idx.lca(5, 3)[0] == 3
        assert idx.lca(0, 5)[0] == 0
        assert idx.lca(4, 4)[0] == 4

    def test_binary_tree_lca_brute_force(self):
        # Complete binary tree; compare against path-walking LCA.
        g = binary_tree(4)
        res = bfs(g, 0)
        f = RootedForest.from_parents(res.parent)
        idx = LCAIndex(f)
        rng = np.random.default_rng(0)
        for _ in range(60):
            u, v = rng.integers(0, g.num_vertices, size=2)
            pu = set(f.path_to_root(int(u)))
            walker = int(v)
            while walker not in pu:
                walker = int(f.parent[walker])
            assert idx.lca(int(u), int(v))[0] == walker

    def test_cross_tree_lca_is_minus_one(self):
        f = RootedForest.from_parents(np.asarray([-1, 0, -1, 2]))
        idx = LCAIndex(f)
        assert idx.lca(1, 3)[0] == -1
        assert np.isinf(idx.tree_distance(1, 3)[0])

    def test_tree_distance_matches_bfs_in_tree(self):
        g = grid_2d(6, 6)
        res = bfs(g, 0)
        f = RootedForest.from_parents(res.parent)
        tree_graph = f.to_graph()
        idx = LCAIndex(f)
        rng = np.random.default_rng(1)
        us = rng.integers(0, 36, size=40)
        vs = rng.integers(0, 36, size=40)
        got = idx.tree_distance(us, vs)
        for u, v, d in zip(us, vs, got):
            assert d == bfs(tree_graph, int(u)).dist[int(v)]

    def test_weighted_tree_distance(self):
        parent = np.asarray([-1, 0, 1, 1])
        weight = np.asarray([0.0, 2.0, 4.0, 8.0])
        idx = LCAIndex(RootedForest(parent=parent, edge_weight=weight))
        assert idx.tree_distance(2, 3, weighted=True)[0] == pytest.approx(12.0)
        assert idx.tree_distance(0, 2, weighted=True)[0] == pytest.approx(6.0)

    def test_batch_shape_validation(self):
        idx = LCAIndex(path_forest(4))
        with pytest.raises(ParameterError):
            idx.lca(np.asarray([1, 2]), np.asarray([1]))
        with pytest.raises(ParameterError):
            idx.lca(0, 9)

    def test_empty_forest_rejected(self):
        with pytest.raises(ParameterError):
            LCAIndex(RootedForest.from_parents(np.zeros(0, dtype=np.int64)))
