"""Hypothesis property tests for the substrates (graphs, BFS, trees, scan)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfs.direction import direction_optimizing_bfs
from repro.bfs.frontier import frontier_bfs
from repro.bfs.sequential import bfs, multi_source_bfs
from repro.graphs.build import from_edges
from repro.graphs.io import from_json, to_json
from repro.graphs.ops import (
    connected_components,
    count_cut_edges,
    induced_subgraph,
    quotient_graph,
)
from repro.pram.cost_model import WorkDepthCounter
from repro.pram.primitives import par_pack, par_scan
from repro.trees.lca import LCAIndex
from repro.trees.structure import RootedForest

from tests.conftest import connected_graphs, random_graphs

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(random_graphs())
def test_csr_json_round_trip(graph):
    assert from_json(to_json(graph)) == graph


@COMMON
@given(random_graphs())
def test_edge_array_degree_consistency(graph):
    edges = graph.edge_array()
    degrees = np.zeros(graph.num_vertices, dtype=np.int64)
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    np.testing.assert_array_equal(degrees, graph.degrees())


@COMMON
@given(random_graphs(), st.integers(0, 100))
def test_frontier_bfs_matches_sequential(graph, seed):
    rng = np.random.default_rng(seed)
    source = int(rng.integers(graph.num_vertices))
    np.testing.assert_array_equal(
        bfs(graph, source).dist,
        frontier_bfs(graph, np.asarray([source])).dist,
    )


@COMMON
@given(random_graphs(), st.integers(0, 100))
def test_direction_bfs_matches_sequential(graph, seed):
    rng = np.random.default_rng(seed)
    source = int(rng.integers(graph.num_vertices))
    np.testing.assert_array_equal(
        bfs(graph, source).dist,
        direction_optimizing_bfs(graph, source).dist,
    )


@COMMON
@given(random_graphs(), st.integers(0, 100))
def test_induced_subgraph_preserves_adjacency(graph, seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, graph.num_vertices + 1))
    vertices = rng.choice(graph.num_vertices, size=k, replace=False)
    sub = induced_subgraph(graph, vertices)
    # Every subgraph edge maps to an original edge, and vice versa.
    vset = set(int(v) for v in vertices)
    expected = sum(
        1
        for u, v in graph.iter_edges()
        if u in vset and v in vset
    )
    assert sub.graph.num_edges == expected
    for u, v in sub.graph.edge_array():
        assert graph.has_edge(
            int(sub.original_ids[u]), int(sub.original_ids[v])
        )


@COMMON
@given(random_graphs(), st.integers(0, 100))
def test_quotient_conserves_cross_edges(graph, seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(1, graph.num_vertices + 1))
    labels = rng.integers(0, k, size=graph.num_vertices)
    q = quotient_graph(graph, labels)
    assert q.edge_multiplicity.sum() == count_cut_edges(graph, labels)
    assert q.graph.num_edges == q.edge_multiplicity.shape[0]


@COMMON
@given(random_graphs())
def test_components_are_bfs_reachability_classes(graph):
    labels = connected_components(graph)
    for v in range(graph.num_vertices):
        reach = bfs(graph, v).dist >= 0
        np.testing.assert_array_equal(reach, labels == labels[v])


@COMMON
@given(connected_graphs(max_vertices=14), st.integers(0, 100))
def test_lca_distance_is_a_tree_metric(graph, seed):
    res = bfs(graph, 0)
    forest = RootedForest.from_parents(res.parent)
    idx = LCAIndex(forest)
    tree = forest.to_graph()
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    us = rng.integers(0, n, size=12)
    vs = rng.integers(0, n, size=12)
    got = idx.tree_distance(us, vs)
    for u, v, d in zip(us, vs, got):
        expected = multi_source_bfs(tree, np.asarray([int(u)])).dist[int(v)]
        assert d == expected


@COMMON
@given(
    st.lists(st.integers(-50, 50), min_size=0, max_size=200),
)
def test_scan_matches_cumsum_shifted(values):
    arr = np.asarray(values, dtype=np.int64)
    counter = WorkDepthCounter()
    out = par_scan(counter, arr)
    expected = np.concatenate([[0], np.cumsum(arr)[:-1]]) if arr.size else arr
    np.testing.assert_array_equal(out, expected)


@COMMON
@given(
    st.lists(st.integers(0, 100), min_size=0, max_size=100),
    st.integers(0, 2**31 - 1),
)
def test_pack_equals_boolean_indexing(values, seed):
    arr = np.asarray(values, dtype=np.int64)
    rng = np.random.default_rng(seed)
    mask = rng.random(arr.shape[0]) < 0.5
    counter = WorkDepthCounter()
    np.testing.assert_array_equal(par_pack(counter, arr, mask), arr[mask])
