"""Round-trip tests for graph serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.io import (
    from_json,
    read_edge_list,
    read_metis,
    to_json,
    write_edge_list,
    write_metis,
)


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = grid_2d(5, 7)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_round_trip_edgeless(self, tmp_path):
        g = from_edges(4, [])
        path = tmp_path / "empty.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_vertices == 4 and back.num_edges == 0

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("garbage\n")
        with pytest.raises(GraphError, match="header"):
            read_edge_list(path)

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "short.edges"
        path.write_text("3 2\n0 1\n")
        with pytest.raises(GraphError, match="mismatch"):
            read_edge_list(path)


class TestMetis:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(40, 0.1, seed=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        assert read_metis(path) == g

    def test_isolated_vertices_survive(self, tmp_path):
        g = from_edges(5, [(0, 1)])
        path = tmp_path / "iso.metis"
        write_metis(g, path)
        back = read_metis(path)
        assert back.num_vertices == 5
        assert back == g

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.metis"
        path.write_text("3 2\n2\n")
        with pytest.raises(GraphError, match="truncated"):
            read_metis(path)

    def test_header_edge_mismatch(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphError, match="mismatch"):
            read_metis(path)


class TestJson:
    def test_round_trip(self):
        g = path_graph(9)
        assert from_json(to_json(g)) == g

    def test_json_is_parsable_dict(self):
        import json

        doc = json.loads(to_json(grid_2d(2, 2)))
        assert doc["num_vertices"] == 4
        assert len(doc["edges"]) == 4
