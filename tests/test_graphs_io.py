"""Round-trip tests for graph serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, ParameterError
from repro.graphs.build import from_edges
from repro.graphs.generators import erdos_renyi, grid_2d, path_graph
from repro.graphs.io import (
    from_json,
    load_graph,
    parse_graph,
    read_edge_list,
    read_metis,
    to_json,
    write_edge_list,
    write_metis,
)
from repro.graphs.weighted import WeightedCSRGraph, weights_by_name


def weighted_fixture() -> WeightedCSRGraph:
    """A weighted graph with irrational-ish float64 weights — the round
    trips below must preserve them bit-for-bit."""
    return weights_by_name(erdos_renyi(30, 0.15, seed=7), "exp:1.3", seed=11)


def assert_weighted_equal(a: WeightedCSRGraph, b: WeightedCSRGraph) -> None:
    assert isinstance(a, WeightedCSRGraph)
    assert a == b  # topology
    np.testing.assert_array_equal(a.weights, b.weights)  # exact, not close


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = grid_2d(5, 7)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_round_trip_edgeless(self, tmp_path):
        g = from_edges(4, [])
        path = tmp_path / "empty.edges"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_vertices == 4 and back.num_edges == 0

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("garbage\n")
        with pytest.raises(GraphError, match="header"):
            read_edge_list(path)

    def test_count_mismatch(self, tmp_path):
        path = tmp_path / "short.edges"
        path.write_text("3 2\n0 1\n")
        with pytest.raises(GraphError, match="mismatch"):
            read_edge_list(path)


class TestMetis:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(40, 0.1, seed=2)
        path = tmp_path / "g.metis"
        write_metis(g, path)
        assert read_metis(path) == g

    def test_isolated_vertices_survive(self, tmp_path):
        g = from_edges(5, [(0, 1)])
        path = tmp_path / "iso.metis"
        write_metis(g, path)
        back = read_metis(path)
        assert back.num_vertices == 5
        assert back == g

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "trunc.metis"
        path.write_text("3 2\n2\n")
        with pytest.raises(GraphError, match="truncated"):
            read_metis(path)

    def test_header_edge_mismatch(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(GraphError, match="mismatch"):
            read_metis(path)


class TestJson:
    def test_round_trip(self):
        g = path_graph(9)
        assert from_json(to_json(g)) == g

    def test_json_is_parsable_dict(self):
        import json

        doc = json.loads(to_json(grid_2d(2, 2)))
        assert doc["num_vertices"] == 4
        assert len(doc["edges"]) == 4

    def test_invalid_json_reports_position(self):
        with pytest.raises(GraphError, match="line 1"):
            from_json("{not json", source="payload")

    def test_missing_keys(self):
        with pytest.raises(GraphError, match="num_vertices"):
            from_json('{"edges": []}')

    def test_non_object_document(self):
        with pytest.raises(GraphError, match="JSON object"):
            from_json("[1, 2]")


class TestWeightedRoundTrips:
    """Every format must round-trip weighted graphs bit-for-bit."""

    def test_edge_list(self, tmp_path):
        g = weighted_fixture()
        path = tmp_path / "w.edges"
        write_edge_list(g, path)
        assert_weighted_equal(read_edge_list(path), g)

    def test_metis(self, tmp_path):
        g = weighted_fixture()
        path = tmp_path / "w.metis"
        write_metis(g, path)
        assert_weighted_equal(read_metis(path), g)

    def test_json(self):
        g = weighted_fixture()
        assert_weighted_equal(from_json(to_json(g)), g)

    def test_unit_weights_survive_each_format(self, tmp_path):
        g = weights_by_name(grid_2d(4, 5), "unit:2.5")
        for name, write, read in (
            ("u.edges", write_edge_list, read_edge_list),
            ("u.metis", write_metis, read_metis),
        ):
            path = tmp_path / name
            write(g, path)
            assert_weighted_equal(read(path), g)
        assert_weighted_equal(from_json(to_json(g)), g)

    def test_zero_edge_weighted_graph_survives_each_format(self, tmp_path):
        from repro.graphs.weighted import weighted_from_edges

        g = weighted_from_edges(3, np.zeros((0, 2)), np.zeros(0))
        for name, write, read in (
            ("e.edges", write_edge_list, read_edge_list),
            ("e.metis", write_metis, read_metis),
        ):
            path = tmp_path / name
            write(g, path)
            back = read(path)
            assert isinstance(back, WeightedCSRGraph), name
            assert back.num_vertices == 3 and back.num_edges == 0
        assert isinstance(from_json(to_json(g)), WeightedCSRGraph)

    def test_metis_weighted_header_code(self, tmp_path):
        path = tmp_path / "w.metis"
        write_metis(weighted_fixture(), path)
        assert path.read_text().splitlines()[0].endswith(" 001")

    def test_metis_asymmetric_weights_rejected(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 1 001\n2 1.0\n1 2.0\n")
        with pytest.raises(GraphError, match="weights are not symmetric"):
            read_metis(path)

    def test_metis_unsupported_fmt_code(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 1 011\n2 1\n1 1\n")
        with pytest.raises(GraphError, match="unsupported METIS fmt"):
            read_metis(path)


class TestErrorLineNumbers:
    """Malformed inputs raise GraphError naming source:line, never a raw
    ValueError from int()/float()."""

    def test_edge_list_bad_endpoint(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("3 2\n0 1\n0 x\n")
        with pytest.raises(GraphError, match=r"bad\.edges:3.*integer"):
            read_edge_list(path)

    def test_edge_list_bad_header(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("three two\n")
        with pytest.raises(GraphError, match=r"bad\.edges:1.*integer"):
            read_edge_list(path)

    def test_edge_list_bad_weight(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("3 2\n0 1 1.5\n1 2 heavy\n")
        with pytest.raises(GraphError, match=r"bad\.edges:3.*number"):
            read_edge_list(path)

    def test_edge_list_too_many_rows(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("3 1\n0 1\n1 2\n")
        with pytest.raises(GraphError, match=r"bad\.edges:3.*mismatch"):
            read_edge_list(path)

    def test_metis_bad_neighbor(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("2 1\n2\nzzz\n")
        with pytest.raises(GraphError, match=r"bad\.metis:3.*integer"):
            read_metis(path)

    def test_metis_comment_lines_keep_numbering(self, tmp_path):
        path = tmp_path / "bad.metis"
        path.write_text("% header comment\n2 1\n2\nzzz\n")
        with pytest.raises(GraphError, match=r"bad\.metis:4"):
            read_metis(path)

    def test_negative_header_counts_rejected(self):
        # Must be GraphError, never a raw ValueError/IndexError escaping
        # the parser (the serve upload path relies on this).
        with pytest.raises(GraphError, match="edge count must be >= 0"):
            parse_graph("3 -2\n0 1\n", format="edges")
        with pytest.raises(GraphError, match="vertex count must be >= 0"):
            parse_graph("-3 0\n", format="metis")
        with pytest.raises(GraphError, match="edge count must be >= 0"):
            parse_graph("2 -1\n\n\n", format="metis")

    def test_huge_edge_count_rejected_before_allocation(self):
        # A tiny payload whose header promises 10^12 edges must fail on
        # the line-count check, not attempt a 16 TB allocation.
        with pytest.raises(GraphError, match="only .* lines"):
            parse_graph("1 1000000000000\n0 1\n", format="edges")


class TestLoadGraph:
    def test_dispatch_by_extension(self, tmp_path):
        g = grid_2d(4, 4)
        edges = tmp_path / "g.edges"
        metis = tmp_path / "g.metis"
        as_json = tmp_path / "g.json"
        write_edge_list(g, edges)
        write_metis(g, metis)
        as_json.write_text(to_json(g))
        for path in (edges, metis, as_json):
            assert load_graph(path) == g

    def test_sniffs_unknown_extension(self, tmp_path):
        g = erdos_renyi(25, 0.2, seed=4)
        for writer, name in (
            (write_edge_list, "a.dat"),
            (write_metis, "b.dat"),
        ):
            path = tmp_path / name
            writer(g, path)
            assert load_graph(path) == g
        j = tmp_path / "c.dat"
        j.write_text(to_json(g))
        assert load_graph(j) == g

    def test_sniffs_weighted_metis(self, tmp_path):
        # Weighted METIS has a 3-token header, the unambiguous sniff case.
        g = weighted_fixture()
        path = tmp_path / "w.dat"
        write_metis(g, path)
        assert_weighted_equal(load_graph(path), g)

    def test_explicit_format_overrides_extension(self, tmp_path):
        g = path_graph(6)
        path = tmp_path / "g.json"  # extension lies
        write_edge_list(g, path)
        assert load_graph(path, format="edges") == g

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="unknown graph format"):
            load_graph(tmp_path / "g.edges", format="graphml")

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError, match="cannot read"):
            load_graph(tmp_path / "nope.edges")

    def test_unparsable_content_lists_formats(self, tmp_path):
        path = tmp_path / "junk.dat"
        path.write_text("not graph\nat all\n")  # 2-token lines: ambiguous
        with pytest.raises(GraphError, match="not parsable"):
            load_graph(path)

    def test_unparsable_metis_shaped_content_keeps_line(self, tmp_path):
        path = tmp_path / "junk.dat"
        path.write_text("this is not\na graph at all\n")  # 3-token: metis
        with pytest.raises(GraphError, match=r"junk\.dat:1"):
            load_graph(path)

    def test_parse_graph_round_trip_from_text(self):
        g = grid_2d(3, 3)
        assert parse_graph(to_json(g)) == g

    def test_format_for_path(self):
        from repro.graphs import format_for_path

        assert format_for_path("a/b.metis") == "metis"
        assert format_for_path("c.EDGES") == "edges"
        assert format_for_path("d.json") == "json"
        assert format_for_path("e.dat") == "auto"

    def test_unified_entry_points_exported_from_package(self):
        from repro.graphs import load_graph as lg, parse_graph as pg

        assert lg is load_graph and pg is parse_graph

    def test_ambiguous_text_refuses_to_guess(self):
        # Valid as METIS (triangle on vertices 1-3, vertex 4 isolated) AND
        # as an edge list (a different triangle on vertices 1-3 of 4):
        # auto must refuse rather than silently pick one.
        text = "4 3\n2 3\n1 3\n1 2\n\n"
        with pytest.raises(GraphError, match="ambiguous"):
            parse_graph(text)
        as_metis = parse_graph(text, format="metis")
        as_edges = parse_graph(text, format="edges")
        assert as_metis != as_edges  # the ambiguity is real
        assert as_metis.has_edge(0, 1) and not as_edges.has_edge(0, 1)

    def test_ambiguous_but_identical_parses_fine(self):
        # Both interpretations yield the empty graph — no ambiguity.
        assert parse_graph("0 0\n").num_vertices == 0
