"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs.build import from_edges
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
)


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def small_grid() -> CSRGraph:
    """10×10 grid: the workhorse fixture (connected, structured)."""
    return grid_2d(10, 10)


@pytest.fixture
def medium_grid() -> CSRGraph:
    """25×25 grid for statistics-flavoured tests."""
    return grid_2d(25, 25)


@pytest.fixture
def small_path() -> CSRGraph:
    """Path on 50 vertices — the adversarial case for sequential methods."""
    return path_graph(50)


@pytest.fixture
def small_cycle() -> CSRGraph:
    return cycle_graph(30)


@pytest.fixture
def random_sparse() -> CSRGraph:
    """A fixed sparse ER graph (possibly disconnected)."""
    return erdos_renyi(120, 0.02, seed=99)


@pytest.fixture
def two_triangles() -> CSRGraph:
    """Two disjoint triangles — the canonical disconnected fixture."""
    return from_edges(
        6, np.asarray([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])
    )


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------
@st.composite
def random_graphs(
    draw,
    min_vertices: int = 2,
    max_vertices: int = 24,
    require_edges: bool = False,
):
    """A random simple undirected graph as a CSRGraph.

    Edges are sampled as a subset of all pairs, so the strategy covers empty,
    sparse, dense and disconnected cases; shrinking reduces both vertex and
    edge counts.
    """
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if require_edges and pairs:
        chosen = draw(
            st.lists(st.sampled_from(pairs), min_size=1, unique=True)
        )
    elif pairs:
        chosen = draw(st.lists(st.sampled_from(pairs), unique=True))
    else:
        chosen = []
    edges = np.asarray(chosen, dtype=np.int64).reshape(-1, 2)
    return from_edges(n, edges)


@st.composite
def connected_graphs(draw, min_vertices: int = 2, max_vertices: int = 20):
    """A random *connected* graph: random spanning tree plus extra edges."""
    n = draw(st.integers(min_vertices, max_vertices))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    # Random attachment tree guarantees connectivity.
    tree = [(int(rng.integers(v)), v) for v in range(1, n)]
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(pairs), unique=True)) if pairs else []
    edges = np.asarray(tree + extra, dtype=np.int64).reshape(-1, 2)
    return from_edges(n, edges)


def assert_valid_partition(graph: CSRGraph, center: np.ndarray) -> None:
    """Common assertion: every vertex assigned, centers are fixed points."""
    n = graph.num_vertices
    assert center.shape[0] == n
    assert center.min() >= 0 and center.max() < n
    np.testing.assert_array_equal(center[center], center)
