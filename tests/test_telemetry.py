"""Unit tests for repro.telemetry: metrics registry, spans, deep-mode gate.

The registry tests use private :class:`MetricsRegistry` instances so they
never touch the process-global one; the tracing tests install callable
sinks and always restore the module state via the autouse fixture.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.core.ldd_bfs import partition_bfs
from repro.graphs.generators import grid_2d
from repro.telemetry import trace
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
    series_key,
    split_series_key,
)


@pytest.fixture(autouse=True)
def _restore_telemetry_state():
    was_enabled = telemetry.enabled()
    yield
    telemetry.set_enabled(was_enabled)
    trace.disable_tracing()


# ---------------------------------------------------------------------------
# series keys
# ---------------------------------------------------------------------------
class TestSeriesKey:
    def test_no_labels_is_bare_name(self):
        assert series_key("repro_requests_total", None) == "repro_requests_total"
        assert series_key("repro_requests_total", {}) == "repro_requests_total"

    def test_single_label(self):
        assert series_key("m", {"op": "decompose"}) == 'm{op="decompose"}'

    def test_multiple_labels_sorted(self):
        key = series_key("m", {"z": "1", "a": "2"})
        assert key == 'm{a="2",z="1"}'

    def test_split_round_trip(self):
        key = series_key("m", {"a": "2", "z": "1"})
        base, body = split_series_key(key)
        assert base == "m"
        assert body == 'a="2",z="1"'
        assert split_series_key("bare") == ("bare", "")


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("reqs")
        reg.counter("reqs", 2.0)
        reg.counter("reqs", op="a")
        snap = reg.snapshot()
        assert snap["counters"]["reqs"] == 3.0
        assert snap["counters"]['reqs{op="a"}'] == 1.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("inflight", 3)
        reg.gauge("inflight", 1)
        assert reg.snapshot()["gauges"]["inflight"] == 1.0

    def test_histogram_le_bucket_semantics(self):
        # Buckets are upper bounds: a value equal to an edge lands in
        # that edge's bucket; past the last edge is the +Inf slot.
        reg = MetricsRegistry()
        edges = (1.0, 2.0, 4.0)
        for value in (0.5, 1.0, 1.5, 4.0, 5.0):
            reg.observe("h", value, buckets=edges)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["buckets"] == [1.0, 2.0, 4.0]
        assert hist["counts"] == [2, 1, 1, 1]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(12.0)

    def test_histogram_edges_fixed_by_first_observation(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5, buckets=(1.0, 2.0))
        reg.observe("h", 0.5, buckets=COUNT_BUCKETS)  # ignored
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["buckets"] == [1.0, 2.0]
        assert hist["count"] == 2

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.observe("h", 0.1)
        snap = reg.snapshot()
        snap["counters"]["c"] = 99.0
        snap["histograms"]["h"]["counts"][0] = 99
        fresh = reg.snapshot()
        assert fresh["counters"]["c"] == 1.0
        assert 99 not in fresh["histograms"]["h"]["counts"]

    def test_merge_sums_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("c", 2.0)
            reg.gauge("g", 3.0)
            reg.observe("h", 0.002)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 4.0
        assert merged["gauges"]["g"] == 6.0  # occupancy gauges sum
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["sum"] == pytest.approx(0.004)

    def test_merge_refuses_mismatched_edges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 0.5, buckets=(1.0, 2.0))
        b.observe("h", 0.5, buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket edges differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_reset_drops_all_series(self):
        reg = MetricsRegistry()
        reg.counter("c")
        reg.gauge("g", 1)
        reg.observe("h", 0.1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_latency_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)


class TestRenderPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs", 3, op="d")
        reg.gauge("inflight", 2)
        reg.observe("lat", 1.5, buckets=(1.0, 2.0), op="d")
        text = render_prometheus(reg.snapshot())
        assert "# TYPE reqs counter\n" in text
        assert 'reqs{op="d"} 3\n' in text
        assert "# TYPE inflight gauge\n" in text
        assert "# TYPE lat histogram\n" in text
        # Bucket counts are cumulative, with a trailing +Inf.
        assert 'lat_bucket{op="d",le="1"} 0\n' in text
        assert 'lat_bucket{op="d",le="2"} 1\n' in text
        assert 'lat_bucket{op="d",le="+Inf"} 1\n' in text
        assert 'lat_sum{op="d"} 1.5\n' in text
        assert 'lat_count{op="d"} 1\n' in text

    def test_unlabelled_histogram_gets_bare_le_labels(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.5, buckets=(1.0,))
        text = render_prometheus(reg.snapshot())
        assert 'lat_bucket{le="1"} 1\n' in text
        assert "lat_sum 0.5\n" in text


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
class TestSpans:
    def test_inactive_span_is_noop(self):
        assert not trace.tracing_active()
        with trace.span("anything", k=1) as live:
            assert live.span_id is None
            live.annotate(extra=2)  # must not raise or record
            assert live.context() is None
            assert trace.current_context() is None

    def test_collect_spans_builds_parent_links(self):
        with trace.collect_spans() as spans:
            with trace.span("outer", depth=0) as outer:
                with trace.span("inner") as inner:
                    inner.annotate(found=True)
                assert outer.context() == trace.current_context()
        assert [record["name"] for record in spans] == ["inner", "outer"]
        inner_rec, outer_rec = spans
        assert inner_rec["trace_id"] == outer_rec["trace_id"]
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert outer_rec["parent_id"] is None
        assert outer_rec["attrs"] == {"depth": 0}
        assert inner_rec["attrs"] == {"found": True}
        assert inner_rec["dur_ms"] >= 0.0
        assert isinstance(inner_rec["pid"], int)

    def test_adopt_context_parents_remote_spans(self):
        with trace.collect_spans() as spans:
            with trace.adopt_context("cafe" * 8, "beef" * 4):
                with trace.span("server.decompose"):
                    pass
        (record,) = spans
        assert record["trace_id"] == "cafe" * 8
        assert record["parent_id"] == "beef" * 4

    def test_collector_takes_precedence_over_sink(self):
        sunk: list[dict] = []
        trace.enable_tracing(sunk.append)
        with trace.collect_spans() as collected:
            with trace.span("remote"):
                pass
        assert [r["name"] for r in collected] == ["remote"]
        assert sunk == []  # no double-recording on loopback
        with trace.span("local"):
            pass
        assert [r["name"] for r in sunk] == ["local"]

    def test_emit_spans_reemits_remote_records(self):
        sunk: list[dict] = []
        trace.enable_tracing(sunk.append)
        trace.emit_spans([
            {"span_id": "a", "name": "remote"},
            "junk",  # non-dict entries are skipped
        ])
        assert [r["name"] for r in sunk] == ["remote"]

    def test_file_sink_round_trips_through_read_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace.enable_tracing(str(path))
        with trace.span("op", key="value"):
            pass
        trace.disable_tracing()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"no": "span ids here"}) + "\n")
        spans = trace.read_spans(path)
        assert [r["name"] for r in spans] == ["op"]
        assert spans[0]["attrs"] == {"key": "value"}

    def test_format_trace_tree_nests_and_orders(self):
        spans = [
            {"trace_id": "t1", "span_id": "s1", "parent_id": None,
             "name": "client.decompose", "ts": 1.0, "dur_ms": 5.0,
             "pid": 1, "attrs": {}},
            {"trace_id": "t1", "span_id": "s2", "parent_id": "s1",
             "name": "server.decompose", "ts": 2.0, "dur_ms": 3.0,
             "pid": 2, "attrs": {"op": "decompose"}},
            {"trace_id": "t1", "span_id": "s3", "parent_id": "missing",
             "name": "orphan", "ts": 3.0, "dur_ms": 1.0, "pid": 3,
             "attrs": {}},
        ]
        text = trace.format_trace_tree(spans)
        assert "trace t1" in text
        assert "(3 span(s)" in text
        # The child is indented under its parent; the orphan is a root.
        client_line, server_line = (
            line for line in text.splitlines()
            if "client.decompose" in line or "server.decompose" in line
        )
        assert client_line.index("client") < server_line.index("server")
        assert "op=decompose" in server_line
        assert any(
            line.startswith(("├─", "└─")) and "orphan" in line
            for line in text.splitlines()
        )

    def test_ids_look_random(self):
        assert trace.new_trace_id() != trace.new_trace_id()
        assert len(trace.new_trace_id()) == 32
        assert len(trace.new_span_id()) == 16


# ---------------------------------------------------------------------------
# the deep-instrumentation gate
# ---------------------------------------------------------------------------
class TestEnabledGate:
    def test_set_enabled_round_trip(self):
        telemetry.set_enabled(True)
        assert telemetry.enabled()
        telemetry.set_enabled(False)
        assert not telemetry.enabled()

    def test_phase_timing_gated_off(self):
        telemetry.set_enabled(False)
        _, result_trace = partition_bfs(grid_2d(6, 6), 0.4, seed=3)
        assert "phases" not in result_trace.extra

    def test_phase_timing_gated_on(self):
        telemetry.set_enabled(True)
        _, result_trace = partition_bfs(grid_2d(6, 6), 0.4, seed=3)
        phases = result_trace.extra["phases"]
        # Unit-suffix-free names are the phase_seconds key contract.
        assert set(phases) == {"shifts", "gather", "resolve"}
        assert all(seconds >= 0.0 for seconds in phases.values())

    def test_gate_does_not_change_assignments(self):
        telemetry.set_enabled(False)
        off, _ = partition_bfs(grid_2d(6, 6), 0.4, seed=3)
        telemetry.set_enabled(True)
        on, _ = partition_bfs(grid_2d(6, 6), 0.4, seed=3)
        assert (off.center == on.center).all()
        assert (off.hops == on.hops).all()
