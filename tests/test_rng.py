"""Unit tests for the randomness substrate (seeding, exponential, order
statistics, permutations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.rng.exponential import (
    exponential_cdf,
    exponential_pdf,
    exponential_tail,
    sample_exponential,
    sample_exponential_inverse_cdf,
    validate_beta,
)
from repro.rng.order_stats import (
    expected_maximum,
    expected_order_statistic,
    harmonic_number,
    high_probability_shift_bound,
    maximum_tail_bound,
    sample_order_statistics_via_spacings,
    sample_spacings,
    spacing_rates,
)
from repro.rng.permutation import (
    is_permutation,
    permutation_keys,
    random_permutation,
    ranks_from_keys,
)
from repro.rng.seeding import make_generator, spawn_generators


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = make_generator(7).random(5)
        b = make_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(3)
        assert make_generator(rng) is rng

    def test_none_gives_fresh_entropy(self):
        a = make_generator(None).random(4)
        b = make_generator(None).random(4)
        assert not np.array_equal(a, b)

    def test_spawn_independence_and_reproducibility(self):
        g1 = spawn_generators(11, 3)
        g2 = spawn_generators(11, 3)
        for a, b in zip(g1, g2):
            np.testing.assert_array_equal(a.random(4), b.random(4))
        draws = [g.random(8) for g in spawn_generators(11, 3)]
        assert not np.array_equal(draws[0], draws[1])

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        gens = spawn_generators(np.random.default_rng(5), 2)
        assert len(gens) == 2


class TestExponential:
    def test_validate_beta_bounds(self):
        assert validate_beta(0.5) == 0.5
        with pytest.raises(ParameterError):
            validate_beta(0.0)
        with pytest.raises(ParameterError):
            validate_beta(1.5)
        assert validate_beta(1.5, upper=np.inf) == 1.5

    def test_mean_matches_one_over_beta(self):
        beta = 0.25
        samples = sample_exponential(beta, 200_000, seed=1)
        assert samples.mean() == pytest.approx(1 / beta, rel=0.02)
        assert samples.min() >= 0

    def test_inverse_cdf_sampler_distribution(self):
        beta = 0.5
        a = sample_exponential_inverse_cdf(beta, 100_000, seed=2)
        assert a.mean() == pytest.approx(1 / beta, rel=0.03)
        assert a.std() == pytest.approx(1 / beta, rel=0.05)

    def test_samplers_match_analytic_quantiles(self):
        # Both samplers must track the analytic quantile −ln(1−q)/β.
        beta = 0.1
        qs = np.linspace(0.1, 0.9, 9)
        analytic = -np.log1p(-qs) / beta
        for sampler, seed in (
            (sample_exponential, 3),
            (sample_exponential_inverse_cdf, 4),
        ):
            sample = sampler(beta, 100_000, seed=seed)
            np.testing.assert_allclose(
                np.quantile(sample, qs), analytic, rtol=0.05
            )

    def test_cdf_pdf_tail_algebra(self):
        x = np.asarray([0.0, 0.5, 2.0])
        beta = 0.7
        np.testing.assert_allclose(
            exponential_cdf(x, beta) + exponential_tail(x, beta), 1.0
        )
        assert exponential_cdf(-1.0, beta) == 0.0
        assert exponential_pdf(-1.0, beta) == 0.0
        assert exponential_tail(-1.0, beta) == 1.0
        assert exponential_pdf(0.0, beta) == pytest.approx(beta)

    def test_memorylessness_empirical(self):
        # Pr[X > s + t | X > s] == Pr[X > t]
        beta, s, t = 0.3, 2.0, 1.5
        x = sample_exponential(beta, 300_000, seed=5)
        cond = (x[x > s] - s > t).mean()
        assert cond == pytest.approx(float(exponential_tail(t, beta)), abs=0.01)


class TestOrderStatistics:
    def test_harmonic_number_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_expected_maximum_formula(self):
        assert expected_maximum(4, 2.0) == pytest.approx(
            harmonic_number(4) / 2.0
        )

    def test_expected_maximum_empirical(self):
        n, beta, trials = 50, 0.4, 4000
        rng = np.random.default_rng(6)
        maxima = rng.exponential(1 / beta, size=(trials, n)).max(axis=1)
        assert maxima.mean() == pytest.approx(
            expected_maximum(n, beta), rel=0.03
        )

    def test_order_statistic_endpoints(self):
        n, beta = 10, 1.0
        assert expected_order_statistic(n, n, beta) == pytest.approx(
            expected_maximum(n, beta)
        )
        # smallest of n exponentials has mean 1/(n·β)
        assert expected_order_statistic(n, 1, beta) == pytest.approx(
            1.0 / (n * beta)
        )

    def test_order_statistic_domain(self):
        with pytest.raises(ParameterError):
            expected_order_statistic(5, 0, 1.0)
        with pytest.raises(ParameterError):
            expected_order_statistic(5, 6, 1.0)

    def test_spacing_rates(self):
        np.testing.assert_allclose(
            spacing_rates(3, 2.0), [6.0, 4.0, 2.0]
        )

    def test_spacings_sum_to_sorted_sample(self):
        # Fact 3.1: cumulated spacings are distributed like sorted samples.
        n, beta = 20, 0.5
        via_spacings = np.stack(
            [
                sample_order_statistics_via_spacings(n, beta, seed=s)
                for s in range(600)
            ]
        )
        direct = np.sort(
            np.random.default_rng(1).exponential(1 / beta, size=(600, n)),
            axis=1,
        )
        # Compare per-order-statistic means (both estimate H_n differences).
        np.testing.assert_allclose(
            via_spacings.mean(axis=0), direct.mean(axis=0), rtol=0.15
        )

    def test_spacings_monotone(self):
        s = sample_order_statistics_via_spacings(30, 0.2, seed=7)
        assert np.all(np.diff(s) >= 0)
        assert sample_spacings(5, 1.0, seed=8).min() >= 0

    def test_tail_bounds(self):
        n, beta, d = 100, 0.5, 2.0
        thr = high_probability_shift_bound(n, beta, d)
        assert thr == pytest.approx(3.0 * np.log(100) / 0.5)
        assert maximum_tail_bound(n, beta, thr) <= 100 ** (-d) * 100 + 1e-12
        assert maximum_tail_bound(n, beta, 0.0) == 1.0

    def test_bound_edge_cases(self):
        assert high_probability_shift_bound(1, 0.5, 1.0) == 0.0
        with pytest.raises(ParameterError):
            high_probability_shift_bound(10, -1.0, 1.0)
        with pytest.raises(ParameterError):
            maximum_tail_bound(10, 0.0, 1.0)


class TestPermutation:
    def test_random_permutation_valid(self):
        perm = random_permutation(40, seed=1)
        assert is_permutation(perm)

    def test_permutation_keys_distinct_unit_interval(self):
        keys = permutation_keys(25, seed=2)
        assert np.unique(keys).size == 25
        assert keys.min() >= 0 and keys.max() < 1

    def test_permutation_keys_empty(self):
        assert permutation_keys(0).shape == (0,)

    def test_ranks_from_keys(self):
        keys = np.asarray([0.5, 0.1, 0.9])
        np.testing.assert_array_equal(ranks_from_keys(keys), [1, 0, 2])

    def test_is_permutation_rejects(self):
        assert not is_permutation(np.asarray([0, 0, 1]))
        assert not is_permutation(np.asarray([1, 2, 3]))
        assert is_permutation(np.asarray([], dtype=np.int64))

    def test_negative_n(self):
        with pytest.raises(ParameterError):
            random_permutation(-1)
