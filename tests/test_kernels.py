"""Kernel selection and the compiled-extension contract.

Covers the dispatch layer (:mod:`repro.bfs.kernels`) in both worlds — the
extension built (most CI jobs) and absent (simulated by monkeypatching) —
plus the native kernel's input validation and the scratch pristine
invariant that makes per-round buffer reuse sound.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.bfs.kernels as kernels
from repro.bfs.delayed import delayed_multisource_bfs, resolve_claims
from repro.bfs.dijkstra import shifted_integer_dijkstra
from repro.bfs.kernels import (
    KERNEL_CHOICES,
    KernelScratch,
    native_available,
    resolve_kernel,
    use_kernel,
)
from repro.errors import ParameterError
from repro.graphs.generators import erdos_renyi, grid_2d

needs_native = pytest.mark.skipif(
    not native_available(), reason="compiled kernel repro.bfs._kernel not built"
)


class TestResolveKernel:
    def test_choices_cover_the_contract(self):
        assert KERNEL_CHOICES == ("auto", "python", "native")

    def test_python_always_resolves(self):
        assert resolve_kernel("python") == "python"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ParameterError, match="unknown kernel"):
            resolve_kernel("fortran")

    def test_auto_matches_availability(self):
        expected = "native" if native_available() else "python"
        assert resolve_kernel("auto") == expected

    @needs_native
    def test_native_resolves_when_built(self):
        assert resolve_kernel("native") == "native"

    def test_native_without_extension_raises_clearly(self, monkeypatch):
        monkeypatch.setattr(kernels, "_native", None)
        assert not native_available()
        assert resolve_kernel("auto") == "python"
        with pytest.raises(ParameterError, match="build_ext"):
            resolve_kernel("native")
        # The BFS front door surfaces the same error.
        with pytest.raises(ParameterError, match="native"):
            delayed_multisource_bfs(
                grid_2d(3, 3), np.zeros(9), kernel="native"
            )

    def test_auto_without_extension_runs_python(self, monkeypatch):
        monkeypatch.setattr(kernels, "_native", None)
        res = delayed_multisource_bfs(grid_2d(3, 3), np.zeros(9), kernel="auto")
        np.testing.assert_array_equal(res.center, np.arange(9))


class TestUseKernel:
    def test_context_sets_and_restores(self):
        before = resolve_kernel(None)
        with use_kernel("python") as resolved:
            assert resolved == "python"
            assert resolve_kernel(None) == "python"
        assert resolve_kernel(None) == before

    def test_none_leaves_context_untouched(self):
        with use_kernel("python"):
            with use_kernel(None) as resolved:
                assert resolved == "python"

    def test_contexts_nest(self):
        with use_kernel("python"):
            with use_kernel("auto"):
                expected = "native" if native_available() else "python"
                assert resolve_kernel(None) == expected
            assert resolve_kernel(None) == "python"

    def test_bad_kernel_rejected_on_entry(self):
        with pytest.raises(ParameterError, match="unknown kernel"):
            with use_kernel("gpu"):
                pass  # pragma: no cover


class TestKernelScratch:
    def test_starts_pristine(self):
        assert KernelScratch(16).pristine()

    def test_python_scatter_restores_pristine(self):
        n = 64
        scratch = KernelScratch(n)
        rng = np.random.default_rng(0)
        cand_v = rng.integers(0, n, 3000)
        cand_c = rng.integers(0, n, 3000)
        tie_key = rng.random(n)
        with_scratch = resolve_claims(
            cand_v, cand_c, tie_key,
            num_vertices=n, kernel="python", scratch=scratch,
        )
        assert scratch.pristine()
        without = resolve_claims(
            cand_v, cand_c, tie_key, num_vertices=n, kernel="python"
        )
        np.testing.assert_array_equal(with_scratch[0], without[0])
        np.testing.assert_array_equal(with_scratch[1], without[1])

    @needs_native
    def test_native_resolve_restores_pristine(self):
        n = 32
        scratch = KernelScratch(n)
        rng = np.random.default_rng(1)
        cand_v = rng.integers(0, n, 200)
        cand_c = rng.integers(0, n, 200)
        tie_key = rng.random(n)
        native = resolve_claims(
            cand_v, cand_c, tie_key,
            num_vertices=n, kernel="native", scratch=scratch,
        )
        assert scratch.pristine()
        python = resolve_claims(
            cand_v, cand_c, tie_key, num_vertices=n, kernel="python"
        )
        np.testing.assert_array_equal(native[0], python[0])
        np.testing.assert_array_equal(native[1], python[1])

    @needs_native
    def test_results_detached_from_scratch(self):
        """Returned winners must not alias the reusable buffers: a later
        round would silently rewrite an earlier round's result."""
        n = 8
        scratch = KernelScratch(n)
        tie_key = np.linspace(0, 1, n)
        first = resolve_claims(
            np.array([1, 2]), np.array([1, 2]), tie_key,
            num_vertices=n, kernel="native", scratch=scratch,
        )
        snapshot = first[0].copy()
        resolve_claims(
            np.array([5, 6]), np.array([5, 6]), tie_key,
            num_vertices=n, kernel="native", scratch=scratch,
        )
        np.testing.assert_array_equal(first[0], snapshot)


@needs_native
class TestNativeValidation:
    def test_wrong_dtype_rejected(self):
        scratch = KernelScratch(4)
        with pytest.raises(TypeError, match="int64"):
            kernels.native_module().resolve_claims(
                np.zeros(2, dtype=np.int32),  # not int64
                np.zeros(2, dtype=np.int64),
                np.zeros(4),
                scratch.best_key,
                scratch.best_center,
                scratch.touched,
                scratch.winners,
                scratch.owners,
            )

    def test_out_of_range_vertex_rejected_and_scratch_reset(self):
        scratch = KernelScratch(4)
        with pytest.raises(ValueError, match="out of range"):
            kernels.native_module().resolve_claims(
                np.array([0, 99], dtype=np.int64),
                np.array([0, 0], dtype=np.int64),
                np.zeros(4),
                scratch.best_key,
                scratch.best_center,
                scratch.touched,
                scratch.winners,
                scratch.owners,
            )
        # The error path must not leave stale bids behind.
        assert scratch.pristine()

    def test_inconsistent_lengths_rejected(self):
        scratch = KernelScratch(4)
        with pytest.raises(ValueError, match="inconsistent"):
            kernels.native_module().resolve_claims(
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),  # length mismatch
                np.zeros(4),
                scratch.best_key,
                scratch.best_center,
                scratch.touched,
                scratch.winners,
                scratch.owners,
            )


@needs_native
class TestNativeBFSParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_native_equals_exact_dijkstra(self, seed):
        """The native kernel satisfies the same ground-truth equivalence the
        python path is pinned to (Section 5)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 50))
        g = erdos_renyi(n, 0.12, seed=seed + 7)
        start = rng.random(n) * rng.integers(1, 10)
        floor = np.floor(start).astype(np.int64)
        res = delayed_multisource_bfs(g, start, kernel="native")
        ref = shifted_integer_dijkstra(g, floor, start - floor)
        np.testing.assert_array_equal(res.center, ref.center)
        np.testing.assert_array_equal(res.hops, ref.hops)
        np.testing.assert_array_equal(res.round_claimed, ref.round_claimed)
