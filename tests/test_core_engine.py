"""Tests for the unified decomposition engine and the batch API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    BatchResult,
    PartitionResult,
    decompose,
    decompose_many,
    graph_kind,
)
from repro.core.partition import partition
from repro.core.registry import method_names
from repro.core.weighted import WeightedDecomposition
from repro.errors import ParameterError
from repro.graphs.generators import grid_2d, path_graph
from repro.graphs.weighted import uniform_weights, weights_by_name


class TestDispatch:
    def test_graph_kind(self):
        assert graph_kind(grid_2d(3, 3)) == "unweighted"
        assert graph_kind(uniform_weights(grid_2d(3, 3))) == "weighted"
        with pytest.raises(ParameterError, match="CSRGraph"):
            graph_kind("not a graph")

    def test_auto_resolves_per_graph_kind(self):
        res = decompose(grid_2d(8, 8), 0.3, seed=0)
        assert res.trace.method == "bfs-fractional"
        wres = decompose(uniform_weights(grid_2d(8, 8)), 0.3, seed=0)
        assert wres.trace.method == "weighted-dijkstra"

    def test_weighted_method_on_unweighted_graph_rejected(self):
        with pytest.raises(ParameterError, match="does not support") as exc:
            decompose(grid_2d(8, 8), 0.3, method="dijkstra")
        assert "bfs" in str(exc.value)

    def test_unweighted_method_on_weighted_graph_rejected(self):
        with pytest.raises(ParameterError, match="does not support") as exc:
            decompose(uniform_weights(grid_2d(8, 8)), 0.3, method="bfs")
        assert "dijkstra" in str(exc.value)

    def test_unknown_method_names_choices(self):
        with pytest.raises(ParameterError, match="unknown method") as exc:
            decompose(grid_2d(8, 8), 0.3, method="nope")
        for name in method_names():
            assert name in str(exc.value)

    def test_unknown_option_rejected(self):
        with pytest.raises(ParameterError, match="accepted options"):
            decompose(grid_2d(8, 8), 0.3, method="bfs", bogus=1)


class TestOptionsForwarding:
    def test_tie_break_option(self):
        res = decompose(
            grid_2d(8, 8), 0.3, seed=1, method="bfs", tie_break="permutation"
        )
        assert res.trace.method == "bfs-permutation"

    def test_alias_matches_pinned_option(self):
        g = grid_2d(9, 9)
        via_alias = decompose(g, 0.2, seed=3, method="permutation")
        via_option = decompose(
            g, 0.2, seed=3, method="bfs", tie_break="permutation"
        )
        np.testing.assert_array_equal(
            via_alias.decomposition.center, via_option.decomposition.center
        )

    def test_sequential_deterministic_starts(self):
        res = decompose(
            path_graph(30), 0.3, seed=5, method="sequential",
            randomize_starts=False,
        )
        # Ball 0 grows from vertex 0 when starts are not randomised.
        assert res.decomposition.center[0] == 0


class TestWeightedThroughEngine:
    def test_returns_partition_result_with_report(self):
        graph = weights_by_name(grid_2d(10, 10), "uniform:0.5,2.0", seed=2)
        res = decompose(graph, 0.2, seed=0, validate=True)
        assert isinstance(res, PartitionResult)
        assert isinstance(res.decomposition, WeightedDecomposition)
        assert res.report is not None
        assert res.report.weighted is True
        assert res.report.all_invariants_hold()
        assert res.report.radius_within_certificate is True
        # The report's cut fraction is the weighted measure.
        assert res.report.cut_fraction == pytest.approx(
            res.decomposition.cut_weight_fraction()
        )

    def test_weighted_summary_keys_match_unweighted(self):
        wsum = decompose(
            uniform_weights(grid_2d(8, 8)), 0.3, seed=1
        ).summary()
        usum = decompose(grid_2d(8, 8), 0.3, seed=1).summary()
        assert set(usum) <= set(wsum)

    def test_validate_skips_certificate_without_delta_max(self):
        # 'sequential' records delta_max = NaN; the engine must map that to
        # "no certificate" rather than comparing against NaN.
        res = decompose(
            grid_2d(8, 8), 0.3, seed=2, method="sequential", validate=True
        )
        assert res.report is not None
        assert res.report.delta_max is None
        assert res.report.radius_within_certificate is None


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestFacadeCompatibility:
    def test_partition_matches_decompose(self):
        g = grid_2d(10, 10)
        old = partition(g, 0.2, seed=7, validate=True)
        new = decompose(g, 0.2, seed=7, validate=True)
        np.testing.assert_array_equal(
            old.decomposition.center, new.decomposition.center
        )
        assert old.summary() == new.summary()

    def test_partition_default_method_is_bfs(self):
        assert partition(grid_2d(6, 6), 0.4, seed=0).trace.method == (
            "bfs-fractional"
        )


class TestDecomposeMany:
    def test_seed_count_and_order(self):
        batch = decompose_many(
            grid_2d(8, 8), 0.3, seeds=4, executor="serial"
        )
        assert isinstance(batch, BatchResult)
        assert [run.seed for run in batch.runs] == [0, 1, 2, 3]
        assert all(run.graph_index == 0 for run in batch.runs)

    def test_explicit_seeds_and_multiple_graphs(self):
        graphs = [grid_2d(6, 6), path_graph(40)]
        batch = decompose_many(
            graphs, 0.3, seeds=[5, 9], executor="serial"
        )
        assert [(r.graph_index, r.seed) for r in batch.runs] == [
            (0, 5), (0, 9), (1, 5), (1, 9),
        ]

    def test_aggregate_statistics(self):
        batch = decompose_many(
            grid_2d(10, 10), 0.2, seeds=5, executor="serial"
        )
        agg = batch.aggregate()
        assert agg["num_runs"] == 5.0
        cuts = batch.values("cut_fraction")
        assert agg["cut_fraction_mean"] == pytest.approx(cuts.mean())
        assert agg["cut_fraction_std"] == pytest.approx(cuts.std())
        assert agg["wall_time_s_mean"] > 0

    def test_process_pool_matches_serial(self):
        """Seed determinism: pooled per-seed summaries == serial ones."""
        g = grid_2d(12, 12)
        serial = decompose_many(g, 0.15, seeds=8, executor="serial")
        pooled = decompose_many(
            g, 0.15, seeds=8, executor="process", max_workers=2
        )

        def stable(batch):
            return [
                {k: v for k, v in s.items() if k != "wall_time_s"}
                for s in batch.summaries()
            ]

        assert stable(serial) == stable(pooled)

    def test_mixed_weighted_and_unweighted_batch(self):
        graphs = [grid_2d(6, 6), uniform_weights(grid_2d(6, 6))]
        batch = decompose_many(graphs, 0.3, seeds=2, executor="serial")
        methods = {run.summary()["method"] for run in batch.runs}
        assert methods == {"bfs-fractional", "weighted-dijkstra"}

    def test_validate_attaches_reports(self):
        batch = decompose_many(
            grid_2d(6, 6), 0.3, seeds=2, validate=True, executor="serial"
        )
        assert all(r.report is not None for r in batch.results)

    def test_bad_configuration_fails_fast(self):
        with pytest.raises(ParameterError, match="accepted options"):
            decompose_many(grid_2d(6, 6), 0.3, seeds=2, bogus=1)
        with pytest.raises(ParameterError, match="at least one seed"):
            decompose_many(grid_2d(6, 6), 0.3, seeds=0)
        with pytest.raises(ParameterError, match="at least one seed"):
            decompose_many(grid_2d(6, 6), 0.3, seeds=[])
        with pytest.raises(ParameterError, match="at least one graph"):
            decompose_many([], 0.3, seeds=2)
        with pytest.raises(ParameterError, match="unknown executor"):
            decompose_many(grid_2d(6, 6), 0.3, seeds=2, executor="thread")

    def test_options_forwarded_to_every_run(self):
        batch = decompose_many(
            grid_2d(6, 6), 0.3, seeds=2, method="bfs",
            tie_break="permutation", executor="serial",
        )
        assert all(
            run.summary()["method"] == "bfs-permutation"
            for run in batch.runs
        )
