"""Experiment RT — request throughput of the shared-memory batch runtime.

The serving claim behind `repro.runtime`: once the graph is resident in
shared memory and workers stay attached, a decomposition request costs its
compute plus a slim result, while a per-task pickling executor pays the full
graph through the pickle stream *twice* per request (task out, result back).
On a >= 100k-edge graph the runtime must sustain at least 2x the
requests/sec of the per-task pickling baseline while producing bit-identical
assignments (checked by digest here, and exhaustively by
tests/test_conformance.py).

The dense Erdos-Renyi workload is the serving-heavy regime on purpose: many
edges (graph transport scales with m), few vertices and a tiny diameter
(compute rounds and result arrays scale with n) — the shape where a batch
runtime earns its keep.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload to a
seconds-fast path-exercise (used by CI) and skips the speedup floor, which
is only meaningful at full size.
"""

from __future__ import annotations

import os

from repro.graphs.generators import erdos_renyi
from repro.runtime.throughput import measure_throughput

from common import Table, bench_scale

#: Strategies the RT table reports, baseline first.
RT_EXECUTORS = ("pickle", "process", "shared")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _workload():
    """(graph, beta, num_requests, repeats) for the current mode/scale."""
    if _smoke():
        return erdos_renyi(200, 0.2, seed=0), 0.3, 6, 1
    scale = bench_scale()
    # ~128k edges * scale; n grows with scale so density stays serving-shaped.
    n = 800 * scale
    p = 0.4 / scale
    return erdos_renyi(n, p, seed=0), 0.3, 128, 4


def test_runtime_throughput():
    graph, beta, num_requests, repeats = _workload()
    records = measure_throughput(
        graph,
        beta,
        num_requests=num_requests,
        executors=("serial",) + RT_EXECUTORS,
        max_workers=2,
        repeats=repeats,
    )
    baseline = records["pickle"]
    table = Table(
        f"RT: requests/sec, n={graph.num_vertices} m={graph.num_edges} "
        f"beta={beta} requests={num_requests}",
        ["executor", "seconds", "req_per_s", "vs_pickle"],
    )
    for name, rec in records.items():
        table.add(
            name, rec.seconds, rec.requests_per_sec,
            rec.speedup_over(baseline),
        )
    table.show()

    digests = {rec.assignments_digest for rec in records.values()}
    assert len(digests) == 1, (
        "executors disagree on assignments: determinism bug"
    )
    if not _smoke():
        speedup = records["shared"].speedup_over(baseline)
        assert graph.num_edges >= 100_000
        assert speedup >= 2.0, (
            f"shared runtime only {speedup:.2f}x over per-task pickling"
        )


if __name__ == "__main__":
    test_runtime_throughput()
