"""Experiments RT, OBS, NK — throughput, telemetry overhead, native kernel.

The serving claim behind `repro.runtime`: once the graph is resident in
shared memory and workers stay attached, a decomposition request costs its
compute plus a slim result, while a per-task pickling executor pays the full
graph through the pickle stream *twice* per request (task out, result back).
On a >= 100k-edge graph the runtime must sustain at least 2x the
requests/sec of the per-task pickling baseline while producing bit-identical
assignments (checked by digest here, and exhaustively by
tests/test_conformance.py).

The dense Erdos-Renyi workload is the serving-heavy regime on purpose: many
edges (graph transport scales with m), few vertices and a tiny diameter
(compute rounds and result arrays scale with n) — the shape where a batch
runtime earns its keep.  ``REPRO_BENCH_SMOKE=1`` shrinks the workload to a
seconds-fast path-exercise (used by CI) and skips the speedup floor, which
is only meaningful at full size.

Experiment OBS rides the same workload on the serial executor and flips
deep telemetry (:func:`repro.telemetry.set_enabled`) between passes: the
per-round BFS phase timers and histogram observations must cost <= 5% of
throughput when enabled and leave assignments bit-identical, and the
per-phase timing histograms they populate are emitted into
``BENCH_observability.json``.

Experiment NK measures the compiled frontier kernel
(:mod:`repro.bfs._kernel`) against the pure-numpy hot path: on a ~1M-edge
graph the native kernel must cut single-request latency by at least 5x,
while every registered unweighted method stays digest-identical across
``kernel="python"`` and ``kernel="native"``.  Skipped when the extension
is not built (a compiler-less install is a supported configuration).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import telemetry
from repro.bfs.kernels import native_available
from repro.core import decompose
from repro.core.registry import method_names
from repro.graphs.generators import erdos_renyi
from repro.runtime.throughput import _digest, measure_throughput
from repro.telemetry import metrics as _metrics

from common import Table, bench_scale, emit_bench_json

#: Strategies the RT table reports, baseline first.
RT_EXECUTORS = ("pickle", "process", "shared")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _workload():
    """(graph, beta, num_requests, repeats) for the current mode/scale."""
    if _smoke():
        return erdos_renyi(200, 0.2, seed=0), 0.3, 6, 1
    scale = bench_scale()
    # ~128k edges * scale; n grows with scale so density stays serving-shaped.
    n = 800 * scale
    p = 0.4 / scale
    return erdos_renyi(n, p, seed=0), 0.3, 128, 4


def test_runtime_throughput():
    graph, beta, num_requests, repeats = _workload()
    records = measure_throughput(
        graph,
        beta,
        num_requests=num_requests,
        executors=("serial",) + RT_EXECUTORS,
        max_workers=2,
        repeats=repeats,
    )
    baseline = records["pickle"]
    table = Table(
        f"RT: requests/sec, n={graph.num_vertices} m={graph.num_edges} "
        f"beta={beta} requests={num_requests}",
        ["executor", "seconds", "req_per_s", "vs_pickle"],
    )
    for name, rec in records.items():
        table.add(
            name, rec.seconds, rec.requests_per_sec,
            rec.speedup_over(baseline),
        )
    table.show()

    digests = {rec.assignments_digest for rec in records.values()}
    assert len(digests) == 1, (
        "executors disagree on assignments: determinism bug"
    )
    if not _smoke():
        speedup = records["shared"].speedup_over(baseline)
        assert graph.num_edges >= 100_000
        assert speedup >= 2.0, (
            f"shared runtime only {speedup:.2f}x over per-task pickling"
        )


def _obs_workload():
    """(graph, beta, num_requests) sized so the 5% budget is measurable.

    The RT smoke graph is so small (~0.4 ms per decomposition) that the
    instrumentation's fixed per-request cost (~20 us: three histogram
    observations, two no-op spans, per-round clock reads) and the timer
    noise are both comparable to the budget; ~40k edges puts one request
    above two milliseconds, where a 5% regression is real signal and the
    fixed cost sits where production graphs put it.
    """
    if _smoke():
        return erdos_renyi(2000, 0.02, seed=0), 0.3, 32
    graph, beta, num_requests, _ = _workload()
    return graph, beta, num_requests


def _measure_obs(graph, beta, num_requests, repeats):
    """(seconds with telemetry off, on, per-mode digest) for one measurement.

    Times every request individually and keeps each request's fastest time
    per mode across interleaved off/on passes.  Contention only ever *adds*
    time (timeit's best-of-N reasoning), and a millisecond-scale sample
    needs just one clean scheduling window over all the passes — whole-pass
    timings would need a clean window tens of ms long, which a busy CI box
    rarely grants.  Interleaving the modes spreads clock-speed drift evenly
    over both.
    """
    seeds = list(range(num_requests))
    best = {
        False: [float("inf")] * num_requests,
        True: [float("inf")] * num_requests,
    }
    digests: dict[bool, str] = {}
    was_enabled = telemetry.enabled()
    try:
        telemetry.set_enabled(False)
        # Discarded warmup so the first measured pass isn't paying cold
        # caches that later ones don't.
        for seed in seeds:
            decompose(graph, beta, seed=seed)
        for _ in range(repeats):
            for mode in (False, True):
                telemetry.set_enabled(mode)
                results = []
                times = best[mode]
                for i, seed in enumerate(seeds):
                    t0 = time.perf_counter()
                    results.append(decompose(graph, beta, seed=seed))
                    elapsed = time.perf_counter() - t0
                    if elapsed < times[i]:
                        times[i] = elapsed
                pass_digest = _digest(results)
                assert digests.setdefault(mode, pass_digest) == pass_digest, (
                    "assignments changed across repeat passes: determinism bug"
                )
    finally:
        telemetry.set_enabled(was_enabled)
    return sum(best[False]), sum(best[True]), digests


def test_observability_overhead():
    """Experiment OBS — deep telemetry costs <= 5% and changes nothing."""
    graph, beta, num_requests = _obs_workload()
    repeats = 7
    # Even per-request minima occasionally read high when the box never
    # goes quiet during a whole measurement, so an over-budget reading is
    # re-measured before it counts: a real regression is over budget on
    # every attempt, a contention spike is not.
    for attempt in range(3):
        off_s, on_s, digests = _measure_obs(graph, beta, num_requests, repeats)
        overhead = on_s / off_s - 1.0
        if overhead <= 0.05:
            break
        print(
            f"attempt {attempt + 1}: overhead {overhead * 100:+.2f}% "
            "over budget; re-measuring"
        )

    table = Table(
        f"OBS: telemetry overhead, n={graph.num_vertices} "
        f"m={graph.num_edges} beta={beta} requests={num_requests} "
        f"per-request best-of-{repeats} interleaved",
        ["telemetry", "seconds", "req_per_s"],
    )
    table.add("off", off_s, num_requests / off_s)
    table.add("on", on_s, num_requests / on_s)
    table.show()
    print(f"overhead with telemetry on: {overhead * 100:+.2f}%")

    # The serial runs executed in this process, so the phase histograms
    # they populated are in the global registry; ship them as the bench
    # artifact's per-phase timing section.
    snap = _metrics.snapshot()
    phases = {}
    for key, hist in (snap.get("histograms") or {}).items():
        base, label_body = _metrics.split_series_key(key)
        if base != "repro_bfs_phase_seconds":
            continue
        phase = label_body.split('"')[1] if '"' in label_body else "all"
        phases[phase] = {
            "observations": hist["count"],
            "total_s": hist["sum"],
            "mean_s": hist["sum"] / hist["count"] if hist["count"] else 0.0,
        }
    emit_bench_json(
        "observability",
        {
            "observability": {
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "beta": beta,
                "requests": num_requests,
                "telemetry_off_per_s": num_requests / off_s,
                "telemetry_on_per_s": num_requests / on_s,
                "overhead_pct": overhead * 100.0,
                "phases": phases,
            }
        },
    )

    assert digests[True] == digests[False], (
        "telemetry changed decomposition output: instrumentation bug"
    )
    assert phases, "telemetry-on pass produced no phase histograms"
    assert overhead <= 0.05, (
        f"deep telemetry costs {overhead * 100:.1f}% (> 5% budget)"
    )


def _nk_workload():
    """(graph, beta, repeats) for the kernel-latency comparison.

    Full mode uses a dense ~1M-edge Erdos-Renyi graph: big rounds are where
    the numpy path pays its per-arc multi-pass cost (repeat/cumsum gathers,
    ``ufunc.at`` priority writes) and where the single fused C sweep shows
    its constant-factor headroom.  Smoke mode only path-exercises.
    """
    if _smoke():
        return erdos_renyi(400, 0.05, seed=7), 0.3, 2
    return erdos_renyi(8000, 0.0329, seed=7), 0.3, 5


def _best_latency(graph, beta, kernel, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = decompose(graph, beta, seed=1, kernel=kernel)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_native_kernel_latency():
    """Experiment NK — the compiled kernel is >= 5x, and changes nothing."""
    if not native_available():
        pytest.skip("compiled kernel repro.bfs._kernel not built")

    # Digest sweep first: every registered unweighted method, two seeds,
    # both kernels — identical assignments before any speed claim counts.
    sweep_graph = erdos_renyi(300, 0.05, seed=2)
    sweep = {}
    for method in method_names("unweighted"):
        for seed in (0, 1):
            runs = {
                kernel: decompose(
                    sweep_graph, 0.3, method=method, seed=seed, kernel=kernel
                )
                for kernel in ("python", "native")
            }
            digest = {k: _digest([r]) for k, r in runs.items()}
            assert digest["python"] == digest["native"], (
                f"kernels disagree: method={method} seed={seed}"
            )
            sweep[f"{method}/seed{seed}"] = digest["python"]

    graph, beta, repeats = _nk_workload()
    python_s, python_res = _best_latency(graph, beta, "python", repeats)
    native_s, native_res = _best_latency(graph, beta, "native", repeats)
    assert _digest([python_res]) == _digest([native_res]), (
        "kernels disagree on the benchmark graph: determinism bug"
    )
    speedup = python_s / native_s

    table = Table(
        f"NK: single-request latency, n={graph.num_vertices} "
        f"m={graph.num_edges} beta={beta} best-of-{repeats}",
        ["kernel", "seconds", "req_per_s", "speedup"],
    )
    table.add("python", python_s, 1.0 / python_s, 1.0)
    table.add("native", native_s, 1.0 / native_s, speedup)
    table.show()

    emit_bench_json(
        "native_kernel",
        {
            "native_kernel": {
                "n": graph.num_vertices,
                "m": graph.num_edges,
                "beta": beta,
                "python_latency_s": python_s,
                "native_latency_s": native_s,
                "speedup": speedup,
                "methods_digest_checked": len(sweep),
            }
        },
    )

    if not _smoke():
        assert graph.num_edges >= 1_000_000
        assert speedup >= 5.0, (
            f"native kernel only {speedup:.2f}x over the numpy path"
        )


if __name__ == "__main__":
    test_runtime_throughput()
    test_observability_overhead()
    test_native_kernel_latency()
