"""Experiment L42 — Lemma 4.2: E[δ_max] = H_n/β and the w.h.p. tail.

The lemma has two parts, both regenerated here by simulation:

1. the expected maximum shift equals ``H_n / β`` exactly;
2. ``Pr[any δ_u > (d+1)·ln n / β] ≤ n^{−d}``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.shifts import sample_shifts
from repro.core.theory import expected_delta_max, whp_radius_bound
from repro.rng.order_stats import harmonic_number

from common import Table, mean_and_sem


def test_expected_maximum_matches_harmonic_formula():
    """Sample mean of δ_max vs H_n/β across n and β."""
    trials = 400
    table = Table(
        "L42: E[delta_max] vs H_n/beta",
        ["n", "beta", "measured", "sem", "H_n/beta", "rel_err"],
    )
    for n, beta in [(50, 0.5), (200, 0.2), (1000, 0.05), (5000, 0.02)]:
        samples = [
            sample_shifts(n, beta, seed=s).delta_max for s in range(trials)
        ]
        mean, sem = mean_and_sem(samples)
        predicted = expected_delta_max(n, beta)
        rel = abs(mean - predicted) / predicted
        table.add(n, beta, mean, sem, predicted, rel)
        # 400 trials put the SEM well under 2% of the mean.
        assert rel < 0.05
    table.show()


def test_tail_bound_holds():
    """Violation frequency of the (d+1)·ln n/β threshold vs n^{−d}."""
    trials = 500
    table = Table(
        "L42-tail: Pr[delta_max > (d+1) ln n / beta] vs n^-d",
        ["n", "beta", "d", "threshold", "violations", "bound*trials"],
    )
    for n, beta, d in [(100, 0.3, 1.0), (500, 0.1, 1.0), (200, 0.2, 0.5)]:
        threshold = whp_radius_bound(n, beta, d)
        violations = sum(
            sample_shifts(n, beta, seed=s).delta_max > threshold
            for s in range(trials)
        )
        expected_max = trials * n ** (-d)
        table.add(n, beta, d, threshold, violations, expected_max)
        # Generous slack: a union-bound prediction, so 4x covers noise.
        assert violations <= 4 * expected_max + 3
    table.show()


def test_spacings_independence_moments():
    """Fact 3.1 sanity at benchmark scale: the k-th spacing's sample mean is
    1/((n−k+1)β)."""
    n, beta, trials = 30, 0.25, 3000
    rng = np.random.default_rng(0)
    draws = np.sort(rng.exponential(1 / beta, size=(trials, n)), axis=1)
    spacings = np.diff(draws, axis=1, prepend=0.0)
    measured = spacings.mean(axis=0)
    predicted = 1.0 / (beta * np.arange(n, 0, -1))
    table = Table(
        "L42-spacings: Fact 3.1 spacing means (n=30, beta=0.25, first 6)",
        ["k", "measured", "predicted"],
    )
    for k in range(6):
        table.add(k + 1, float(measured[k]), float(predicted[k]))
    table.show()
    np.testing.assert_allclose(measured, predicted, rtol=0.15)


def test_delta_max_sampling_throughput(benchmark):
    benchmark(lambda: sample_shifts(100_000, 0.01, seed=1).delta_max)
