"""Experiment C45 — Corollary 4.5: expected cut edges ≤ O(βm), across
graph families.

The guarantee is worst-case over graphs, so the sweep covers structured
(grid, torus), random (ER, regular), hub-heavy (BA), and community (SBM)
topologies.  The report shows cut_fraction/β — the effective constant —
which the paper's analysis bounds by 1 (via 1 − exp(−β) < β).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    random_regular,
    stochastic_block_model,
    torus_2d,
)

from common import Table, mean_and_sem, run_batch

FAMILIES = {
    "grid": lambda: grid_2d(40, 40),
    "torus": lambda: torus_2d(35, 35),
    "er": lambda: erdos_renyi(1200, 0.004, seed=1),
    "regular": lambda: random_regular(1200, 4, seed=2),
    "ba": lambda: barabasi_albert(1000, 3, seed=3),
    "sbm": lambda: stochastic_block_model([300, 300, 300], 0.02, 0.001, seed=4),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_cut_fraction_bounded_per_family(family):
    graph = FAMILIES[family]()
    trials = 10
    table = Table(
        f"C45: cut fraction vs beta ({family}, n={graph.num_vertices}, "
        f"m={graph.num_edges})",
        ["beta", "cut_frac", "sem", "cut_frac/beta"],
    )
    for beta in (0.02, 0.05, 0.1, 0.2):
        fracs = run_batch(graph, beta, method="bfs", seeds=trials).values(
            "cut_fraction"
        )
        mean, sem = mean_and_sem(list(fracs))
        table.add(beta, mean, sem, mean / beta)
        # Corollary 4.5's constant is 1; add sampling slack.
        assert mean <= beta * 1.25 + 0.01, (family, beta, mean)
    table.show()


def test_cut_scales_linearly_in_beta():
    """The cut/β ratio is flat: doubling β doubles the cut."""
    graph = grid_2d(50, 50)
    betas = np.asarray([0.025, 0.05, 0.1, 0.2])
    means = []
    for beta in betas:
        batch = run_batch(graph, float(beta), method="bfs", seeds=8)
        means.append(float(batch.values("cut_fraction").mean()))
    ratios = np.asarray(means) / betas
    table = Table(
        "C45-linear: cut fraction / beta flatness (grid 50x50)",
        ["beta", "cut_frac", "ratio"],
    )
    for b, m, r in zip(betas, means, ratios):
        table.add(float(b), m, float(r))
    table.show()
    assert ratios.max() <= 2.5 * ratios.min()


def test_cut_measurement_throughput(benchmark):
    graph = grid_2d(60, 60)
    d, _ = partition_bfs(graph, 0.1, seed=0)
    benchmark(d.cut_fraction)
