"""Experiment F1 — Figure 1: grid decompositions across the six β values.

Paper artifact: six panels of a 1000×1000 grid decomposed at
β ∈ {0.002, 0.005, 0.01, 0.02, 0.05, 0.1}; qualitatively, lower β gives
fewer, larger-diameter pieces and fewer boundary edges.

This bench regenerates the quantitative content: per β, the piece count,
max/mean radius, and cut fraction, plus PPM renders of each panel (written
next to the bench log).  Grid side defaults to 250 (scale with
``REPRO_BENCH_SCALE=4`` for the paper's exact 1000×1000).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.graphs.generators import grid_2d
from repro.viz.grid_render import render_grid_ppm

from common import FIGURE1_BETAS, Table, grid_side


@pytest.fixture(scope="module")
def figure1_grid():
    side = grid_side(250)
    return side, grid_2d(side, side)


def test_figure1_table_and_renders(figure1_grid, tmp_path_factory):
    """The full Figure 1 sweep — one decomposition per β, with renders."""
    side, graph = figure1_grid
    out_dir = tmp_path_factory.mktemp("figure1")
    table = Table(
        f"F1: Figure 1 reproduction (grid {side}x{side}, m={graph.num_edges})",
        ["beta", "pieces", "max_rad", "mean_rad", "cut_frac", "cut/beta", "render"],
    )
    for beta in FIGURE1_BETAS:
        decomposition, trace = partition_bfs(graph, beta, seed=1307)
        radii = decomposition.radii()
        cf = decomposition.cut_fraction()
        render = render_grid_ppm(
            decomposition.labels,
            side,
            side,
            out_dir / f"figure1_beta_{beta}.ppm",
        )
        table.add(
            beta,
            decomposition.num_pieces,
            int(radii.max()),
            float(radii.mean()),
            cf,
            cf / beta,
            str(render),
        )
        # The paper's qualitative claim, asserted: cut fraction tracks β.
        assert cf <= 1.5 * beta + 0.01
    table.show()


def test_figure1_monotone_trends(figure1_grid):
    """Lower β ⇒ fewer pieces, larger radii, fewer cut edges (Figure 1's
    visual message, as a monotonicity check over the β sweep)."""
    side, graph = figure1_grid
    pieces, radii, cuts = [], [], []
    for beta in FIGURE1_BETAS:
        d, _ = partition_bfs(graph, beta, seed=42)
        pieces.append(d.num_pieces)
        radii.append(d.max_radius())
        cuts.append(d.cut_fraction())
    # Allow single-step noise; the endpoints must order strictly.
    assert pieces[0] < pieces[-1]
    assert radii[0] > radii[-1]
    assert cuts[0] < cuts[-1]
    table = Table(
        "F1-trend: monotonicity over beta",
        ["beta", "pieces", "max_rad", "cut_frac"],
    )
    for b, p, r, c in zip(FIGURE1_BETAS, pieces, radii, cuts):
        table.add(b, p, r, c)
    table.show()


@pytest.mark.parametrize("beta", [0.01, 0.1])
def test_figure1_partition_timing(benchmark, figure1_grid, beta):
    """pytest-benchmark timing of single panels (the paper's workload)."""
    side, graph = figure1_grid
    benchmark(lambda: partition_bfs(graph, beta, seed=7))
