"""Experiment BASE — MPX vs sequential ball growing vs Blelloch et al. [9].

The paper's improvement claims, measured:

- **quality parity**: all three produce valid (β, ·) decompositions with
  comparable cut fractions;
- **parallelism**: the sequential baseline's dependency chain (sum of ball
  radii) grows with n on path-like graphs while MPX's round count tracks
  log n/β;
- **work overhead**: the [9]-style iterative baseline re-scans the graph
  per iteration (O(m log n)-ish) where MPX's single BFS stays ≤ 2m + n.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import decompose
from repro.core.ldd_bfs import partition_bfs
from repro.core.ldd_sequential import partition_sequential
from repro.graphs.generators import grid_2d, path_graph

from common import Table, run_batch

#: benchmark label -> registered engine method name
METHODS = {
    "mpx": "bfs",
    "sequential": "sequential",
    "blelloch": "blelloch",
}


def test_quality_comparison_on_grid():
    graph = grid_2d(40, 40)
    beta = 0.1
    trials = 5
    table = Table(
        "BASE-quality: cut fraction & radius by method (grid 40x40, beta=0.1)",
        ["method", "cut_frac", "max_radius", "pieces"],
    )
    for name, method in METHODS.items():
        agg = run_batch(graph, beta, method=method, seeds=trials).aggregate()
        table.add(
            name,
            agg["cut_fraction_mean"],
            agg["max_radius_mean"],
            agg["num_pieces_mean"],
        )
    table.show()


def test_sequential_chain_grows_linearly_on_path():
    """The Ω(n) dependency chain of ball growing vs MPX's O(log n/β) rounds
    — the paper's core motivation, as a scaling table."""
    beta = 0.2
    table = Table(
        "BASE-chain: sequential chain vs MPX rounds on paths (beta=0.2)",
        ["n", "seq_chain", "mpx_rounds", "chain/n", "rounds/log(n)"],
    )
    chains, rounds_norm = [], []
    for n in [200, 400, 800, 1600]:
        graph = path_graph(n)
        _, t_seq = partition_sequential(graph, beta, seed=1)
        _, t_mpx = partition_bfs(graph, beta, seed=1)
        chains.append(t_seq.sequential_chain / n)
        rounds_norm.append(t_mpx.rounds / np.log(n))
        table.add(
            n,
            t_seq.sequential_chain,
            t_mpx.rounds,
            t_seq.sequential_chain / n,
            t_mpx.rounds / np.log(n),
        )
    table.show()
    # Chain per vertex stays bounded below (linear growth); MPX's
    # normalised rounds stay bounded above (logarithmic growth).
    assert min(chains) > 0.05
    assert max(rounds_norm) <= 12 / beta


def test_work_overhead_of_iterative_baseline():
    graph = grid_2d(40, 40)
    beta = 0.1
    table = Table(
        "BASE-work: arcs scanned by method (grid 40x40, beta=0.1)",
        ["method", "work", "work/2m"],
    )
    works = {}
    for name, method in METHODS.items():
        trace = decompose(graph, beta, method=method, seed=2).trace
        work = trace.extra.get("bfs_work", trace.work)
        works[name] = work
        table.add(name, work, work / graph.num_arcs)
    table.show()
    assert works["mpx"] <= graph.num_arcs + graph.num_vertices
    # The iterative baseline re-scans across iterations.
    assert works["blelloch"] >= works["mpx"]


@pytest.mark.parametrize("method", sorted(METHODS))
def test_method_timing(benchmark, method):
    graph = grid_2d(30, 30)
    benchmark(lambda: decompose(graph, 0.1, method=METHODS[method], seed=0))
