"""Experiment SCALE — Brent-simulated processor scaling of Theorem 1.2.

The theorem's point is that the algorithm's (work, depth) profile lets a
PRAM with p processors run it in ``work/p + depth`` time.  This bench
measures the actual (work, modelled depth) of runs and prints the Brent
curves: speedup saturates at ``work/depth`` processors, which grows with m
at fixed β — the practical meaning of an O(m)-work, polylog·(1/β)-depth
algorithm.  The sequential baseline's curve is flat (its depth *is* its
work on adversarial inputs), making the contrast concrete.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.core.ldd_sequential import partition_sequential
from repro.graphs.generators import grid_2d, path_graph
from repro.pram.cost_model import brent_time

from common import Table

PROCESSORS = (1, 4, 16, 64, 256, 1024)


def test_brent_scaling_curves():
    table = Table(
        "SCALE: Brent simulated time T_p = work/p + depth (beta=0.1)",
        ["graph", "method", "work", "depth"] + [f"T_{p}" for p in PROCESSORS],
    )
    speedup_floor = {}
    for name, graph in [
        ("grid 60x60", grid_2d(60, 60)),
        ("path 4000", path_graph(4000)),
    ]:
        d_mpx, t_mpx = partition_bfs(graph, 0.1, seed=0)
        d_seq, t_seq = partition_sequential(graph, 0.1, seed=0)
        for method, work, depth in [
            ("mpx", t_mpx.extra["bfs_work"], t_mpx.depth),
            ("sequential", t_seq.work, t_seq.sequential_chain * 1),
        ]:
            times = [brent_time(work, depth, p) for p in PROCESSORS]
            table.add(name, method, work, depth, *times)
            if method == "mpx":
                speedup_floor[name] = times[0] / times[-1]
    table.show()
    # MPX must exhibit real simulated speedup (depth << work).
    for name, speedup in speedup_floor.items():
        assert speedup > 3.0, name


def test_saturation_point_grows_with_m():
    """work/depth — the processor count where speedup saturates — must grow
    with problem size at fixed β (more parallelism available)."""
    table = Table(
        "SCALE-saturation: work/depth vs grid side (beta=0.2)",
        ["side", "work", "depth", "work/depth"],
    )
    saturations = []
    for side in (20, 40, 80, 160):
        graph = grid_2d(side, side)
        _, trace = partition_bfs(graph, 0.2, seed=1)
        work = trace.extra["bfs_work"]
        sat = work / max(trace.depth, 1)
        saturations.append(sat)
        table.add(side, work, trace.depth, sat)
    table.show()
    assert saturations[-1] > saturations[0] * 4


def test_brent_computation_throughput(benchmark):
    benchmark(lambda: [brent_time(10**6, 500, p) for p in PROCESSORS])
