"""Compare freshly emitted ``BENCH_*.json`` files against the committed
baseline trajectory in ``benchmarks/baselines/``.

CI persists every run's ``BENCH_*.json`` as build artifacts *and* checks
them against the in-repo baselines, so performance is a visible trajectory
across PRs rather than a log line that scrolls away.  The comparison is
**warn-only by default**: machine variance (CI runners are 2-core, smoke
mode shrinks workloads) makes absolute numbers incomparable across hosts,
so the value is the printed per-experiment deltas next to the structural
diff (new/missing experiments), not a hard gate.  Pass
``--fail-on-missing`` to turn a structural regression (a baseline metric
that vanished) into a nonzero exit — that part is host-independent.

Usage::

    python benchmarks/compare_baselines.py            # current dir vs baselines/
    python benchmarks/compare_baselines.py --current out/ --baseline benchmarks/baselines/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: metric-name suffixes whose direction is known: +1 = higher is better.
_DIRECTIONS = (
    ("_per_s", +1),
    ("speedup", +1),
    ("_s", -1),
    ("_ms", -1),
    ("_bytes", -1),
)


def _direction(metric: str) -> int:
    for suffix, sign in _DIRECTIONS:
        if metric.endswith(suffix):
            return sign
    return 0


def _numeric_leaves(doc: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a bench payload to ``experiment.path.metric -> value``."""
    out: dict[str, float] = {}
    for key, value in sorted(doc.items()):
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(_numeric_leaves(value, path))
        elif isinstance(value, bool):
            continue  # flags (floor_asserted, smoke) are not metrics
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def _load_dir(directory: Path) -> dict[str, dict]:
    docs: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            docs[path.name] = json.loads(path.read_text())
        except ValueError as exc:
            print(f"WARN: {path} is not valid JSON ({exc}); skipped")
    return docs


def compare(baseline_dir: Path, current_dir: Path) -> tuple[int, int]:
    """Print per-metric deltas; returns (compared, missing) counts."""
    baselines = _load_dir(baseline_dir)
    currents = _load_dir(current_dir)
    compared = missing = 0
    if not baselines:
        print(f"no baselines under {baseline_dir} — nothing to compare")
        return 0, 0
    for name, base_doc in baselines.items():
        cur_doc = currents.get(name)
        print(f"\n== {name} ==")
        if cur_doc is None:
            print(f"  MISSING: no current {name} was emitted")
            missing += len(_numeric_leaves(base_doc))
            continue
        base = _numeric_leaves(base_doc)
        cur = _numeric_leaves(cur_doc)
        width = max((len(k) for k in base | cur), default=10)
        for metric in sorted(base | cur):
            if metric not in cur:
                print(f"  {metric:<{width}}  MISSING (baseline "
                      f"{base[metric]:.4g})")
                missing += 1
                continue
            if metric not in base:
                print(f"  {metric:<{width}}  NEW      {cur[metric]:.4g}")
                continue
            compared += 1
            was, now = base[metric], cur[metric]
            delta = (now - was) / was * 100 if was else float("inf")
            sign = _direction(metric.rsplit(".", 1)[-1])
            if sign == 0 or abs(delta) < 1e-9:
                verdict = ""
            elif delta * sign > 0:
                verdict = "(better)"
            else:
                verdict = "(worse)"
            print(f"  {metric:<{width}}  {was:>12.4g} -> {now:>12.4g}  "
                  f"{delta:+7.1f}% {verdict}")
    extra = set(currents) - set(baselines)
    for name in sorted(extra):
        print(f"\n== {name} ==\n  NEW FILE: not in the baseline trajectory "
              f"yet — commit it to benchmarks/baselines/ to track it")
    print(f"\ncompared {compared} metric(s); {missing} missing vs baseline")
    return compared, missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent / "baselines",
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("."),
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--fail-on-missing",
        action="store_true",
        help="exit nonzero if a baseline metric was not emitted at all "
        "(value regressions never fail — numbers are host-dependent)",
    )
    args = parser.parse_args(argv)
    _, missing = compare(args.baseline, args.current)
    if args.fail_on_missing and missing:
        print(f"FAIL: {missing} baseline metric(s) missing", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
