"""Experiment CL — aggregate cluster throughput and v2 wire efficiency.

The scaling claim behind `repro.cluster`: because decompositions are
derandomized and content-addressed, a consistent-hash cluster of N shard
servers multiplies *aggregate* warm throughput — each shard owns a slice
of the digest space and answers its graphs from its own cache, with no
cross-shard coordination.  This experiment measures the same warm request
set two ways:

- ``single-blocking`` — one server process, one blocking ``ServeClient``,
  one request in flight at a time: the pre-cluster serving stack;
- ``cluster-pipelined`` — 3 shard server processes behind a
  ``ClusterRouter`` process, loaded by pipelined ``AsyncServeClient``
  driver processes (several, so the load generator is never the
  bottleneck); the aggregate is the sum of driver rates over a fixed
  window.

Both paths must produce digest-identical results for every configuration
(the conformance contract that licenses sharding).  The request set spans
several graphs because one digest routes to exactly one shard — aggregate
scaling is a property of the workload mix, not of a single hot graph.

Aggregate scaling is a *parallel-hardware* claim: with fewer cores than
busy processes the topology just timeshares one CPU and no sharding
arrangement can beat a single server.  Full mode therefore always
measures and reports, but asserts the >= 3x floor only when the machine
has at least ``MIN_CORES_FOR_FLOOR`` cores; below that the measured
speedup is emitted (stdout + ``BENCH_cluster.json``) with the core count,
not asserted.

The second phase measures the protocol-v2 upload framing against v1 on a
>= 100k-edge graph: raw little-endian buffers (with transport-side integer
downcasting) versus base64 JSON.  Full mode asserts v2 <= 0.8x the v1
frame bytes.  ``REPRO_BENCH_SMOKE=1`` (or ``--smoke``) shrinks the
workload to a seconds-fast in-process path-exercise and skips the floors.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro.cluster import cluster_background
from repro.graphs.generators import erdos_renyi
from repro.serve import ServeClient, graph_digest, serve_background
from repro.serve.aio_client import AsyncServeClient
from repro.serve.client import graph_upload_message
from repro.serve.protocol import encode_frame

from common import Table, bench_scale, emit_bench_json

CL_BETAS = (0.25, 0.4)
NUM_SHARDS = 3
NUM_DRIVERS = 3
#: seconds each driver spends hammering the warm cache in full mode.
DRIVE_SECONDS = 3.0
#: cores needed before the 3x floor is a fair ask: three busy shard
#: processes, the router, and enough driver capacity to saturate them.
MIN_CORES_FOR_FLOOR = 6


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _workload():
    """(graphs, seeds-per-beta, timed-repeats) for the current mode."""
    if _smoke():
        graphs = [erdos_renyi(100, 0.2, seed=s) for s in range(6)]
        return graphs, 2, 2
    scale = bench_scale()
    graphs = [erdos_renyi(1200 * scale, 0.04 / scale, seed=s) for s in range(6)]
    return graphs, 4, 3


# ----------------------------------------------------------------------
# full mode: real processes — shards and router via the CLI, load via
# driver subprocesses, so every component has its own interpreter/GIL.
# ----------------------------------------------------------------------
_SUBPROC_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p
        for p in (
            str(Path(repro.__file__).resolve().parents[1]),
            os.environ.get("PYTHONPATH", ""),
        )
        if p
    ),
}

_ROUTER_SRC = """
import asyncio, sys
from pathlib import Path
from repro.cluster.router import ClusterRouter

shards = [
    (host, int(port))
    for host, port in (a.rsplit(":", 1) for a in sys.argv[1].split(","))
]
router = ClusterRouter(shards, timeout=60.0)

async def main():
    await router.start()
    Path(sys.argv[2]).write_text(str(router.address[1]))
    await router._stop_event.wait()

asyncio.run(main())
"""

_DRIVER_SRC = """
import asyncio, sys, time
from repro.serve.aio_client import AsyncServeClient

host, port = sys.argv[1], int(sys.argv[2])
start_at, duration = float(sys.argv[3]), float(sys.argv[4])
configs = [
    (digest, float(beta), int(seed))
    for digest, beta, seed in (c.split("|") for c in sys.argv[5].split(","))
]

async def main():
    async with AsyncServeClient(host, port, pool_size=4) as client:
        warm = await asyncio.gather(
            *(client.decompose(d, b, seed=s) for d, b, s in configs)
        )
        assert all(r.cached for r in warm), "cache not primed"
        while time.time() < start_at:   # all drivers start together
            await asyncio.sleep(0.005)
        done = 0
        begin = time.perf_counter()
        while time.perf_counter() - begin < duration:
            results = await asyncio.gather(
                *(client.decompose(d, b, seed=s) for d, b, s in configs)
            )
            assert all(r.cached for r in results)
            done += len(results)
        print(done / (time.perf_counter() - begin))

asyncio.run(main())
"""


def _wait_port_file(path: Path, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError(f"no port file at {path} after {timeout}s")


def _spawn_server(tmp: str, tag: str) -> tuple[subprocess.Popen, tuple[str, int]]:
    port_file = Path(tmp) / f"port-{tag}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--workers", "2", "--ttl", "600",
        ],
        env=_SUBPROC_ENV,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return proc, ("127.0.0.1", _wait_port_file(port_file))


def _full_throughput(graphs, configs):
    """(rate_single, rate_cluster, conformance-checked) on real processes."""
    config_arg = ",".join(f"{d}|{b}|{s}" for d, b, s in configs)
    with tempfile.TemporaryDirectory() as tmp:
        procs: list[subprocess.Popen] = []
        try:
            # -- baseline: one server process, one blocking client ------
            proc, addr = _spawn_server(tmp, "single")
            procs.append(proc)
            single_digests = {}
            with ServeClient(*addr) as client:
                for graph in graphs:
                    client.upload_graph(graph)
                for digest, beta, seed in configs:   # prime (cold pass)
                    result = client.decompose(digest, beta, seed=seed)
                    single_digests[(digest, beta, seed)] = (
                        result.result_digest()
                    )
                done, begin = 0, time.perf_counter()
                while time.perf_counter() - begin < DRIVE_SECONDS:
                    for digest, beta, seed in configs:
                        assert client.decompose(
                            digest, beta, seed=seed
                        ).cached
                    done += len(configs)
                rate_single = done / (time.perf_counter() - begin)
                client.shutdown()

            # -- cluster: NUM_SHARDS server processes + router process --
            shards = []
            for index in range(NUM_SHARDS):
                proc, addr = _spawn_server(tmp, f"shard{index}")
                procs.append(proc)
                shards.append(addr)
            router_port_file = Path(tmp) / "port-router"
            router_proc = subprocess.Popen(
                [
                    sys.executable, "-c", _ROUTER_SRC,
                    ",".join(f"{h}:{p}" for h, p in shards),
                    str(router_port_file),
                ],
                env=_SUBPROC_ENV,
            )
            procs.append(router_proc)
            router_addr = ("127.0.0.1", _wait_port_file(router_port_file))

            # conformance before speed: the routed cold pass must match
            # the single server bit for bit.
            async def conformance_pass():
                async with AsyncServeClient(
                    *router_addr, pool_size=4
                ) as client:
                    for graph in graphs:
                        await client.upload_graph(graph)
                    cold = await asyncio.gather(
                        *(
                            client.decompose(digest, beta, seed=seed)
                            for digest, beta, seed in configs
                        )
                    )
                    for (digest, beta, seed), result in zip(configs, cold):
                        assert result.result_digest() == single_digests[
                            (digest, beta, seed)
                        ], (
                            f"cluster drifted from single server at "
                            f"beta={beta} seed={seed}"
                        )

            asyncio.run(conformance_pass())

            # -- timed: driver processes hammer the warm cache ----------
            start_at = time.time() + 3.0
            drivers = [
                subprocess.Popen(
                    [
                        sys.executable, "-c", _DRIVER_SRC,
                        router_addr[0], str(router_addr[1]),
                        str(start_at), str(DRIVE_SECONDS), config_arg,
                    ],
                    env=_SUBPROC_ENV,
                    stdout=subprocess.PIPE,
                    text=True,
                )
                for _ in range(NUM_DRIVERS)
            ]
            rates = []
            for driver in drivers:
                out, _ = driver.communicate(timeout=120)
                if driver.returncode != 0:
                    raise RuntimeError("cluster driver process failed")
                rates.append(float(out.strip()))
            rate_cluster = sum(rates)

            with ServeClient(*router_addr) as probe:
                stats = probe.stats()
            assert stats["router"]["alive"] == NUM_SHARDS
            occupied = sum(
                1 for entry in stats["shards"].values() if entry["graphs"]
            )
            assert occupied >= 2, (
                "workload never spread beyond a single shard"
            )
            with ServeClient(*router_addr) as probe:
                probe.shutdown()
        finally:
            for proc in procs:
                proc.terminate()
    return rate_single, rate_cluster


def _smoke_throughput(graphs, configs, timed):
    """In-process path exercise: cluster_background + one async client."""
    single_digests = {}
    with serve_background(graphs, max_workers=2) as server:
        with ServeClient(*server.address) as client:
            for digest, beta, seed in configs:
                result = client.decompose(digest, beta, seed=seed)
                single_digests[(digest, beta, seed)] = result.result_digest()
            start = time.perf_counter()
            for digest, beta, seed in timed:
                assert client.decompose(digest, beta, seed=seed).cached
            single_wall = time.perf_counter() - start
    rate_single = len(timed) / single_wall

    async def cluster_pass(router):
        async with AsyncServeClient(*router.address, pool_size=4) as client:
            cold = await asyncio.gather(
                *(
                    client.decompose(digest, beta, seed=seed)
                    for digest, beta, seed in configs
                )
            )
            for (digest, beta, seed), result in zip(configs, cold):
                assert (
                    result.result_digest()
                    == single_digests[(digest, beta, seed)]
                ), (
                    f"cluster drifted from single server at beta={beta} "
                    f"seed={seed}"
                )
            start = time.perf_counter()
            warm = await asyncio.gather(
                *(
                    client.decompose(digest, beta, seed=seed)
                    for digest, beta, seed in timed
                )
            )
            wall = time.perf_counter() - start
            assert all(r.cached for r in warm)
            return wall

    with cluster_background(
        graphs, num_shards=NUM_SHARDS, max_workers=2
    ) as router:
        cluster_wall = asyncio.run(cluster_pass(router))
        with ServeClient(*router.address) as probe:
            stats = probe.stats()
        assert stats["router"]["alive"] == NUM_SHARDS
        occupied = sum(
            1 for entry in stats["shards"].values() if entry["graphs"]
        )
        assert occupied >= 2, "workload never spread beyond a single shard"
    return rate_single, len(timed) / cluster_wall


def test_cluster_throughput():
    graphs, seeds_per_beta, repeats = _workload()
    configs = [
        (graph_digest(graph), beta, seed)
        for graph in graphs
        for beta in CL_BETAS
        for seed in range(seeds_per_beta)
    ]

    cores = os.cpu_count() or 1
    if _smoke():
        rate_single, rate_cluster = _smoke_throughput(
            graphs, configs, configs * repeats
        )
    else:
        rate_single, rate_cluster = _full_throughput(graphs, configs)
    speedup = rate_cluster / rate_single

    table = Table(
        f"CL: aggregate warm throughput, {len(graphs)} graphs "
        f"(~{graphs[0].num_edges} edges each), {cores} cores",
        ["mode", "req_per_s"],
    )
    table.add("single-blocking", rate_single)
    table.add(f"cluster-pipelined[{NUM_SHARDS}]", rate_cluster)
    table.show()
    print(f"CL speedup: {speedup:.2f}x")

    emit_bench_json(
        "cluster",
        {
            "throughput": {
                "single_blocking_req_per_s": rate_single,
                "cluster_pipelined_req_per_s": rate_cluster,
                "shards": NUM_SHARDS,
                "drivers": NUM_DRIVERS,
                "speedup": speedup,
                "cores": cores,
                "floor_asserted": (
                    not _smoke() and cores >= MIN_CORES_FOR_FLOOR
                ),
                "graphs": len(graphs),
                "edges_per_graph": graphs[0].num_edges,
                "smoke": _smoke(),
            }
        },
    )

    if not _smoke():
        if cores >= MIN_CORES_FOR_FLOOR:
            assert speedup >= 3.0, (
                f"cluster only {speedup:.1f}x aggregate warm throughput "
                "over a blocking single-server client — sharding is not "
                "earning its keep"
            )
        else:
            print(
                f"CL floor skipped: {cores} core(s) < "
                f"{MIN_CORES_FOR_FLOOR} — {NUM_SHARDS} shard processes "
                f"cannot scale without parallel hardware; measured "
                f"{speedup:.2f}x reported, not asserted"
            )


def test_upload_wire_bytes():
    """v2 binary upload framing vs v1 base64 JSON on one large graph."""
    if _smoke():
        graph = erdos_renyi(300, 0.2, seed=9)
    else:
        scale = bench_scale()
        graph = erdos_renyi(800 * scale, 0.4 / scale, seed=9)

    v1_bytes = len(encode_frame(graph_upload_message(graph, 1), 1))
    v2_bytes = len(encode_frame(graph_upload_message(graph, 2), 2))
    ratio = v2_bytes / v1_bytes

    table = Table(
        f"CL-WIRE: upload frame bytes, n={graph.num_vertices} "
        f"m={graph.num_edges}",
        ["protocol", "frame_bytes", "vs_v1"],
    )
    table.add("v1 (base64 JSON)", v1_bytes, 1.0)
    table.add("v2 (binary)", v2_bytes, ratio)
    table.show()

    emit_bench_json(
        "cluster",
        {
            "upload_wire": {
                "v1_frame_bytes": v1_bytes,
                "v2_frame_bytes": v2_bytes,
                "v2_over_v1": ratio,
                "num_edges": graph.num_edges,
                "smoke": _smoke(),
            }
        },
    )

    if not _smoke():
        assert graph.num_edges >= 100_000
        assert ratio <= 0.8, (
            f"v2 upload frames are {ratio:.2f}x v1 — the binary framing "
            "should cut at least 20% off upload bytes"
        )


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    test_cluster_throughput()
    test_upload_wire_bytes()
