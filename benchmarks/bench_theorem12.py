"""Experiments T12-work and T12-depth — Theorem 1.2's cost claims.

Theorem 1.2: ``Partition`` runs in expected O(m) work and O(log²n/β) depth.

- **Work**: arcs scanned per run divided by m must stay bounded by a
  constant (≈1: every arc is gathered at most once from each endpoint's
  frontier membership) across two orders of magnitude of m.
- **Depth**: BFS rounds must track O(log n / β); modelled PRAM depth
  (rounds × log n) must track O(log² n / β).  We fit the constant at the
  smallest size and check larger sizes stay within a constant factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.core.theory import theorem12_depth_bound
from repro.graphs.generators import grid_2d, random_regular

from common import Table, bench_scale, mean_and_sem, run_batch


def _work_ratio(graph, beta: float, seeds: range) -> tuple[float, float]:
    batch = run_batch(graph, beta, method="bfs", seeds=seeds)
    ratios = [
        run.result.trace.extra["bfs_work"] / graph.num_arcs
        for run in batch.runs
    ]
    return mean_and_sem(ratios)


def test_work_is_linear_in_m():
    """T12-work: scanned arcs / 2m stays ≈ constant as n grows 100×."""
    beta = 0.1
    sides = [20, 40, 80, 160]
    if bench_scale() > 1:
        sides.append(160 * bench_scale())
    table = Table(
        "T12-work: BFS work / num_arcs across sizes (grid, beta=0.1)",
        ["side", "n", "m", "work_ratio", "sem"],
    )
    ratios = []
    for side in sides:
        graph = grid_2d(side, side)
        mean, sem = _work_ratio(graph, beta, range(3))
        ratios.append(mean)
        table.add(side, graph.num_vertices, graph.num_edges, mean, sem)
    table.show()
    # O(m) work claim: each arc is gathered at most once, plus one wake-up
    # unit per vertex — so the ratio is bounded by (2m + n)/2m and must not
    # trend upward with n.
    assert max(ratios) <= 1.0 + graph.num_vertices / graph.num_arcs + 1e-9
    assert ratios[-1] <= ratios[0] * 1.5 + 0.1


def test_work_linear_on_expander():
    """Same check on constant-degree expanders (low diameter regime)."""
    beta = 0.2
    table = Table(
        "T12-work: expander family (4-regular, beta=0.2)",
        ["n", "work_ratio", "sem"],
    )
    for n in [200, 800, 3200]:
        graph = random_regular(n, 4, seed=n)
        mean, sem = _work_ratio(graph, beta, range(3))
        table.add(n, mean, sem)
        assert mean <= 1.0 + graph.num_vertices / graph.num_arcs + 1e-9
    table.show()


def test_depth_tracks_log_squared_over_beta():
    """T12-depth: rounds ≲ c·log n/β and PRAM depth ≲ c·log² n/β."""
    beta = 0.2
    table = Table(
        "T12-depth: rounds vs (log n)/beta (grid, beta=0.2)",
        ["side", "n", "rounds", "logn/beta", "rounds*beta/logn", "depth", "bound"],
    )
    normalised = []
    for side in [20, 40, 80, 160]:
        graph = grid_2d(side, side)
        batch = run_batch(graph, beta, method="bfs", seeds=3)
        n = graph.num_vertices
        scale = np.log(n) / beta
        mean_rounds = float(batch.values("rounds").mean())
        depth_list = batch.values("depth")
        normalised.append(mean_rounds / scale)
        table.add(
            side,
            n,
            mean_rounds,
            scale,
            mean_rounds / scale,
            float(np.mean(depth_list)),
            theorem12_depth_bound(n, beta, constant=20),
        )
    table.show()
    # The normalised rounds must stay O(1): no upward trend beyond noise.
    assert max(normalised) <= 3.0
    assert normalised[-1] <= normalised[0] * 2.0 + 0.5


def test_depth_scales_inversely_with_beta():
    """Halving β should roughly double the rounds (fixed n)."""
    graph = grid_2d(60, 60)
    table = Table(
        "T12-depth: rounds vs 1/beta (grid 60x60)",
        ["beta", "rounds", "rounds*beta"],
    )
    products = []
    for beta in [0.4, 0.2, 0.1, 0.05]:
        rounds = run_batch(graph, beta, method="bfs", seeds=3).aggregate()[
            "rounds_mean"
        ]
        products.append(rounds * beta)
        table.add(beta, rounds, rounds * beta)
    table.show()
    # rounds·β ≈ const (up to the log n factor and noise).
    assert max(products) <= 3.0 * min(products)


@pytest.mark.parametrize("side", [64, 128])
def test_partition_throughput(benchmark, side):
    """pytest-benchmark timing across sizes (vectorised engine)."""
    graph = grid_2d(side, side)
    benchmark(lambda: partition_bfs(graph, 0.1, seed=0))
