"""Experiment ORACLE — approximate distance oracles (Cohen [13] lineage).

Reported: preprocessing piece counts, query error ratios, and the
query-quality/β trade-off (smaller pieces → tighter estimates → more
preprocessing).  Soundness (never underestimate) is asserted, not just
reported.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.oracles import build_oracle
from repro.graphs.generators import erdos_renyi, grid_2d, torus_2d

from common import Table


def test_error_vs_beta_tradeoff():
    graph = grid_2d(30, 30)
    table = Table(
        "ORACLE: estimate quality vs beta (grid 30x30)",
        ["beta", "pieces", "mean_ratio", "max_ratio", "underest"],
    )
    prev_mean = np.inf
    for beta in (0.02, 0.1, 0.3):
        oracle = build_oracle(graph, beta, seed=1)
        rep = oracle.evaluate(num_sources=8, seed=2)
        table.add(
            beta,
            oracle.num_pieces,
            rep.mean_ratio,
            rep.max_ratio,
            rep.underestimate_fraction,
        )
        assert rep.underestimate_fraction == 0.0
    table.show()


def test_oracle_across_families():
    table = Table(
        "ORACLE: quality across graph families (beta=0.2)",
        ["graph", "pieces", "mean_ratio", "max_ratio"],
    )
    for name, graph in [
        ("torus 20x20", torus_2d(20, 20)),
        ("er n=500", erdos_renyi(500, 0.01, seed=3)),
        ("grid 25x25", grid_2d(25, 25)),
    ]:
        oracle = build_oracle(graph, 0.2, seed=4)
        rep = oracle.evaluate(num_sources=6, seed=5)
        table.add(name, oracle.num_pieces, rep.mean_ratio, rep.max_ratio)
        assert rep.underestimate_fraction == 0.0
        assert rep.mean_ratio < 25.0
    table.show()


def test_oracle_query_throughput(benchmark):
    graph = grid_2d(25, 25)
    oracle = build_oracle(graph, 0.2, seed=0)
    rng = np.random.default_rng(1)
    us = rng.integers(0, graph.num_vertices, size=10_000)
    vs = rng.integers(0, graph.num_vertices, size=10_000)
    benchmark(lambda: oracle.estimate(us, vs))


def test_oracle_build_timing(benchmark):
    graph = grid_2d(20, 20)
    benchmark(lambda: build_oracle(graph, 0.2, seed=0))
