"""Experiments W, PAR, DIR — weighted extension, parallel backend and
direction-optimising BFS.

- W:   §6 weighted decomposition — weighted cut fraction tracks β, radii
       bounded by δ_max (weighted distance).
- PAR: the multiprocessing backend is bit-identical to the vectorised
       engine (the substitution-soundness check from DESIGN.md) and its
       rounds match exactly.
- DIR: direction-optimising BFS [8] — arcs examined vs plain top-down on
       low-diameter graphs (the regime the decomposition operates in).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfs.delayed import delayed_multisource_bfs
from repro.bfs.direction import direction_optimizing_bfs
from repro.bfs.frontier import frontier_bfs
from repro.bfs.parallel_mp import ParallelBFSEngine
from repro.core.shifts import sample_shifts
from repro.core.weighted import partition_weighted
from repro.graphs.generators import erdos_renyi, grid_2d, hypercube
from repro.graphs.weighted import uniform_weights, weighted_from_edges

from common import Table, run_batch


class TestWeightedExtension:
    def test_weighted_cut_tracks_beta(self):
        rng = np.random.default_rng(0)
        g0 = grid_2d(25, 25)
        weights = rng.uniform(0.5, 2.0, size=g0.num_edges)
        graph = weighted_from_edges(g0.num_vertices, g0.edge_array(), weights)
        table = Table(
            "W: weighted cut fraction vs beta (grid 25x25, U[0.5,2] weights)",
            ["beta", "cut_weight_frac", "max_radius", "delta_max"],
        )
        for beta in (0.05, 0.1, 0.2):
            # Through the engine: weighted graphs dispatch to 'dijkstra' and
            # the summary's cut_fraction is the weighted measure.
            batch = run_batch(graph, beta, seeds=5)
            for run in batch.runs:
                assert (
                    run.result.decomposition.max_radius()
                    <= run.result.trace.delta_max + 1e-9
                )
            fracs = batch.values("cut_fraction")
            table.add(
                beta,
                float(fracs.mean()),
                float(batch.values("max_radius").mean()),
                float(np.mean([r.result.trace.delta_max for r in batch.runs])),
            )
            # Lemma 4.4 with c = w, averaged: cut weight ≤ ~β·W.
            assert fracs.mean() <= 2.6 * beta + 0.01
        table.show()

    def test_weighted_agrees_with_unweighted_on_unit_weights(self):
        g0 = grid_2d(15, 15)
        graph = uniform_weights(g0)
        d, _ = partition_weighted(graph, 0.15, seed=3)
        assert d.cut_weight_fraction() == pytest.approx(
            d.num_cut_edges() / g0.num_edges
        )

    def test_weighted_timing(self, benchmark):
        graph = uniform_weights(grid_2d(15, 15))
        benchmark(lambda: partition_weighted(graph, 0.2, seed=0))


class TestParallelBackend:
    def test_mp_backend_identical_and_round_matched(self):
        graph = grid_2d(20, 20)
        table = Table(
            "PAR: serial vs multiprocessing backend (grid 20x20)",
            ["beta", "rounds_serial", "rounds_mp", "identical"],
        )
        with ParallelBFSEngine(graph, num_workers=2) as engine:
            for beta in (0.1, 0.3):
                shifts = sample_shifts(graph.num_vertices, beta, seed=7)
                serial = delayed_multisource_bfs(
                    graph, shifts.start_time, tie_key=shifts.tie_key
                )
                par = engine.partition_delayed(
                    shifts.start_time, tie_key=shifts.tie_key
                )
                identical = bool(
                    np.array_equal(serial.center, par.center)
                    and np.array_equal(serial.hops, par.hops)
                )
                table.add(beta, serial.num_rounds, par.num_rounds, identical)
                assert identical
                assert serial.num_rounds == par.num_rounds
        table.show()

    def test_mp_backend_timing(self, benchmark):
        graph = grid_2d(15, 15)
        shifts = sample_shifts(graph.num_vertices, 0.2, seed=1)
        with ParallelBFSEngine(graph, num_workers=2) as engine:
            benchmark(
                lambda: engine.partition_delayed(
                    shifts.start_time, tie_key=shifts.tie_key
                )
            )


class TestDirectionOptimizing:
    def test_arcs_examined_on_low_diameter_graphs(self):
        table = Table(
            "DIR: arcs examined, top-down vs direction-optimising",
            ["graph", "td_work", "dir_work", "bu_rounds", "savings"],
        )
        for name, graph in [
            ("hypercube 10", hypercube(10)),
            ("er n=2000", erdos_renyi(2000, 0.004, seed=2)),
        ]:
            td = frontier_bfs(graph, np.asarray([0]))
            opt = direction_optimizing_bfs(graph, 0)
            np.testing.assert_array_equal(td.dist, opt.dist)
            bu_rounds = opt.directions.count("bu")
            table.add(
                name,
                td.work,
                opt.work,
                bu_rounds,
                1.0 - opt.work / td.work,
            )
            assert bu_rounds >= 1  # the switch engages in this regime
        table.show()

    def test_direction_bfs_timing(self, benchmark):
        graph = hypercube(10)
        benchmark(lambda: direction_optimizing_bfs(graph, 0))
