"""Experiment OOC — graphs bigger than RAM: memmap substrate end to end.

Three phases over the out-of-core stack:

1. **streaming ingest** — an edge-list file goes through
   :func:`repro.graphs.io.stream_edge_list_to_mmap` (counting-sort passes
   straight into the memmap layout, never an in-RAM edge array); reports
   MB/s and edges/s, and checks the streamed graph's content digest
   equals the in-memory parser's.

2. **bounded-RSS decomposition** — a circulant graph whose CSR bytes
   exceed an address-space budget is built analytically *into* the memmap
   layout (the builder itself is row-blocked), then decomposed in a child
   process whose ``RLIMIT_DATA`` is half the graph bytes.  A governor
   thread polls ``/proc/self/statm`` and drops clean file-backed pages
   (``MADV_DONTNEED``) whenever residency crosses 30% of the graph, so
   the file is paged through, not held.  Full mode asserts the child's
   ``ru_maxrss`` high-water stayed under **0.5× the graph bytes** while
   the graph itself is 2× the anonymous-memory budget — the
   impossible-in-RAM configuration.  Smoke mode digest-compares the
   memmap child's result against an in-RAM decomposition instead.

3. **chunked upload** — the same memmap graph is shipped to a *stock*
   ``DecompositionServer`` (default 512 MiB ``MAX_FRAME_BYTES``) through
   ``upload_begin``/``upload_chunk``/``upload_commit``; full mode pushes
   ≥ 1 GB of logical payload that could never fit one frame, and reports
   end-to-end MB/s (client hash + wire + server spool + server re-hash +
   chunked validation).

``REPRO_BENCH_SMOKE=1`` (or ``--smoke``) shrinks every phase to a
seconds-fast path-exercise and skips the RSS floor (CI runs this under
``ulimit -v`` as an extra belt).  Results land in ``BENCH_outofcore.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.engine import decompose
from repro.graphs import load_graph, stream_edge_list_to_mmap
from repro.graphs.mmapcsr import MmapCSR, MmapLayout
from repro.graphs.csr import CSRGraph
from repro.serve import ServeClient, graph_digest, serve_background

from common import Table, bench_scale, emit_bench_json

#: decomposition parameters of the bounded-RSS phase.
OOC_BETA = 0.2
OOC_SEED = 7

#: residency fraction at which the child's governor drops file pages.
GOVERNOR_FRACTION = 0.25
#: the full-mode gate: peak RSS must stay under this fraction of the
#: graph's CSR bytes.
RSS_GATE_FRACTION = 0.5


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _sizes():
    """(ingest n/deg, circulant n/strides) for the current mode."""
    if _smoke():
        return (2_000, 8), (4_096, 8)
    scale = bench_scale()
    # 2^20 vertices x 128 arcs/vertex x 8 bytes ~= 1.07 GB of indices:
    # the CSR exceeds 1 GB and is 2x the child's RLIMIT_DATA budget.
    return (200_000 * scale, 16), (1 << 20, 64)


# ----------------------------------------------------------------------
# phase 1: streaming edge-list ingest
# ----------------------------------------------------------------------
def _write_edge_list(path: Path, n: int, deg: int, seed: int = 0) -> int:
    """A reproducible simple edge list (ring + random chords); returns m."""
    rng = np.random.default_rng(seed)
    ring = np.stack(
        [np.arange(n, dtype=np.int64), (np.arange(n, dtype=np.int64) + 1) % n],
        axis=1,
    )
    extra = rng.integers(0, n, size=(n * (deg - 2) // 2, 2))
    edges = np.concatenate([ring, extra], axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    _, keep = np.unique(lo * n + hi, return_index=True)
    edges = edges[np.sort(keep)]
    with path.open("w") as fh:
        fh.write(f"{n} {edges.shape[0]}\n")
        np.savetxt(fh, edges, fmt="%d")
    return int(edges.shape[0])


def phase_ingest(workdir: Path, table: Table) -> dict:
    n, deg = _sizes()[0]
    text_path = workdir / "ingest.edges"
    out_path = workdir / "ingest.rgm"
    m = _write_edge_list(text_path, n, deg)
    text_bytes = text_path.stat().st_size
    t0 = time.perf_counter()
    wrapper = stream_edge_list_to_mmap(str(text_path), str(out_path))
    elapsed = time.perf_counter() - t0
    try:
        streamed_digest = graph_digest(wrapper.graph)
        graph_bytes = wrapper.nbytes()
    finally:
        wrapper.close()
        os.unlink(out_path)
    in_memory = load_graph(text_path, format="edges")
    assert graph_digest(in_memory) == streamed_digest, (
        "streamed ingest digest diverged from the in-memory parser"
    )
    mb_s = text_bytes / max(elapsed, 1e-9) / 1e6
    table.add("ingest", f"{n}v/{m}e", f"{text_bytes/1e6:.1f} MB",
              f"{elapsed:.2f}s", f"{mb_s:.1f} MB/s")
    return {
        "num_vertices": n,
        "num_edges": m,
        "text_bytes": int(text_bytes),
        "graph_bytes": int(graph_bytes),
        "ingest_s": elapsed,
        "ingest_mb_per_s": mb_s,
        "digest_matches_in_memory": True,
    }


# ----------------------------------------------------------------------
# phase 2: circulant builder + rlimited decomposition child
# ----------------------------------------------------------------------
def _circulant_strides(num_strides: int) -> np.ndarray:
    return np.arange(1, num_strides + 1, dtype=np.int64)


def build_circulant_mmap(path: str, n: int, num_strides: int) -> MmapCSR:
    """Write the circulant graph C(n; 1..K) directly into a memmap layout.

    Every vertex ``v`` neighbours ``(v ± s) mod n`` for each stride — a
    regular graph of degree ``2K`` whose rows are computable analytically,
    so the builder streams row blocks into the file and never holds more
    than one block in RAM.
    """
    strides = _circulant_strides(num_strides)
    if n <= 2 * int(strides[-1]):
        raise ValueError("n must exceed twice the largest stride")
    deg = 2 * num_strides
    layout = MmapLayout.create(
        path,
        CSRGraph,
        [
            ("indptr", (n + 1,), np.dtype(np.int64)),
            ("indices", (n * deg,), np.dtype(np.int64)),
        ],
    )
    offsets = strides.reshape(1, -1)
    block_rows = max(1, (4 * 1024 * 1024) // deg)
    for v0 in range(0, n, block_rows):
        v1 = min(n, v0 + block_rows)
        rows = np.arange(v0, v1, dtype=np.int64).reshape(-1, 1)
        neigh = np.concatenate(
            [(rows - offsets) % n, (rows + offsets) % n], axis=1
        )
        neigh.sort(axis=1)
        views = layout.views
        views["indices"][v0 * deg : v1 * deg] = neigh.reshape(-1)
        views["indptr"][v0 : v1 + 1] = np.arange(
            v0, v1 + 1, dtype=np.int64
        ) * deg
        del views
        # Written pages accumulate in this process's RSS (and hence in
        # the rlimited child's inherited high-water mark at fork) unless
        # dropped; the data itself lives on in the page cache.
        layout.advise_dontneed()
    return layout.open_graph()


#: the rlimited child: decompose a memmap graph under an anonymous-memory
#: budget with a page-dropping governor; report digest + peak RSS as JSON.
_CHILD_SRC = """
import hashlib, json, os, resource, sys, threading
import numpy as np
from repro.core.engine import decompose
from repro.graphs.mmapcsr import MmapCSR

path, data_limit, beta, seed = (
    sys.argv[1], int(sys.argv[2]), float(sys.argv[3]), int(sys.argv[4])
)
governor_limit = int(sys.argv[5])
if data_limit > 0:
    resource.setrlimit(resource.RLIMIT_DATA, (data_limit, data_limit))

# Start cold: the parent just wrote the file, so its pages sit hot in the
# page cache and would minor-fault into RSS at memory speed -- far faster
# than any governor can react.  fsync + FADV_DONTNEED evicts them, so
# page-ins happen at disk speed and residency is governable.
fd = os.open(path, os.O_RDONLY)
os.fsync(fd)
os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
os.close(fd)

wrapper = MmapCSR.open(path)
stop = threading.Event()
advised = 0

def governor():
    global advised
    page = os.sysconf("SC_PAGE_SIZE")
    while not stop.wait(0.02):
        try:
            with open("/proc/self/statm") as fh:
                rss = int(fh.read().split()[1]) * page
        except OSError:
            return
        if rss > governor_limit:
            wrapper.advise_dontneed()
            advised += 1

thread = threading.Thread(target=governor, daemon=True)
thread.start()
result = decompose(wrapper.graph, beta, seed=seed)
stop.set()
thread.join()
dec = result.decomposition
sha = hashlib.sha256()
for arr in (dec.center, dec.hops):
    sha.update(np.ascontiguousarray(arr).tobytes())
maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "result_digest": sha.hexdigest(),
    "num_pieces": int(dec.num_pieces),
    "peak_rss_bytes": int(maxrss_kb) * 1024,
    "governor_advises": advised,
}))
"""


def phase_decompose(
    workdir: Path, table: Table
) -> tuple[dict, MmapCSR, Path]:
    n, num_strides = _sizes()[1]
    path = workdir / "circulant.rgm"
    t0 = time.perf_counter()
    wrapper = build_circulant_mmap(str(path), n, num_strides)
    build_s = time.perf_counter() - t0
    graph_bytes = wrapper.nbytes()
    # Drop the parent's mapping before the child starts: pages mapped by
    # any process are ineligible for eviction, and the child's cold-start
    # fadvise must actually empty the page cache for the RSS gate to
    # measure paging, not cache hits.  Reopened below for the upload phase.
    wrapper.close()
    data_limit = graph_bytes // 2 if not _smoke() else 0
    governor_limit = int(graph_bytes * GOVERNOR_FRACTION)
    env = {
        **os.environ,
        "PYTHONPATH": os.pathsep.join(
            p
            for p in (
                str(Path(repro.__file__).resolve().parents[1]),
                os.environ.get("PYTHONPATH", ""),
            )
            if p
        ),
    }
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SRC, str(path), str(data_limit),
         str(OOC_BETA), str(OOC_SEED), str(governor_limit)],
        capture_output=True, text=True, env=env,
    )
    child_s = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"rlimited decomposition child failed:\n{proc.stderr}"
        )
    child = json.loads(proc.stdout)
    wrapper = MmapCSR.open(str(path))
    rss_fraction = child["peak_rss_bytes"] / graph_bytes
    payload = {
        "num_vertices": n,
        "degree": 2 * num_strides,
        "graph_bytes": int(graph_bytes),
        "build_s": build_s,
        "decompose_s": child_s,
        "data_rlimit_bytes": int(data_limit),
        "peak_rss_bytes": int(child["peak_rss_bytes"]),
        "peak_rss_fraction": rss_fraction,
        "governor_advises": child["governor_advises"],
        "num_pieces": child["num_pieces"],
    }
    table.add("decompose", f"{n}v deg{2*num_strides}",
              f"{graph_bytes/1e9:.2f} GB", f"{child_s:.2f}s",
              f"RSS {rss_fraction:.2f}x")
    if _smoke():
        # Small enough to decompose in RAM: the memmap child must be
        # bit-identical (same digest over center/hops).
        local = decompose(wrapper.graph, OOC_BETA, seed=OOC_SEED)
        sha = hashlib.sha256()
        for arr in (local.decomposition.center, local.decomposition.hops):
            sha.update(np.ascontiguousarray(arr).tobytes())
        assert sha.hexdigest() == child["result_digest"], (
            "memmap child decomposition diverged from in-RAM"
        )
        payload["digest_matches_in_ram"] = True
    else:
        assert graph_bytes > data_limit, "graph must exceed the budget"
        assert rss_fraction < RSS_GATE_FRACTION, (
            f"peak RSS {child['peak_rss_bytes']} is "
            f"{rss_fraction:.2f}x the graph bytes "
            f"(gate: < {RSS_GATE_FRACTION}x)"
        )
        payload["rss_gate_asserted"] = True
    return payload, wrapper, path


# ----------------------------------------------------------------------
# phase 3: chunked upload against a stock server
# ----------------------------------------------------------------------
def phase_upload(wrapper: MmapCSR, table: Table) -> dict:
    graph = wrapper.graph
    total_bytes = wrapper.nbytes()
    with serve_background() as server:
        with ServeClient(*server.address, timeout=600.0) as client:
            t0 = time.perf_counter()
            response = client.upload_chunked(graph)
            elapsed = time.perf_counter() - t0
            assert response["ok"] and response["complete"]
            assert response["num_vertices"] == graph.num_vertices
            stats = client.stats()
            backing_mmap = stats["pool"].get("backing_mmap", 0)
    mb_s = total_bytes / max(elapsed, 1e-9) / 1e6
    table.add("upload", f"{graph.num_vertices}v",
              f"{total_bytes/1e9:.2f} GB", f"{elapsed:.2f}s",
              f"{mb_s:.1f} MB/s")
    payload = {
        "payload_bytes": int(total_bytes),
        "upload_s": elapsed,
        "upload_mb_per_s": mb_s,
        "server_backing_mmap": int(backing_mmap),
    }
    if not _smoke():
        assert total_bytes >= 1_000_000_000, (
            "full mode must push at least 1 GB through the chunked ops"
        )
        payload["gigabyte_asserted"] = True
    return payload


def main() -> None:
    if "--smoke" in sys.argv:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    table = Table(
        "OOC out-of-core substrate",
        ["phase", "size", "bytes", "time", "rate/gate"],
    )
    results: dict[str, object] = {"smoke": _smoke()}
    with tempfile.TemporaryDirectory(prefix="repro-bench-ooc-") as tmp:
        workdir = Path(tmp)
        results["ingest"] = phase_ingest(workdir, table)
        decompose_payload, wrapper, path = phase_decompose(workdir, table)
        results["decompose"] = decompose_payload
        try:
            results["chunked_upload"] = phase_upload(wrapper, table)
        finally:
            wrapper.close()
            os.unlink(path)
    table.show()
    emit_bench_json("outofcore", results)


if __name__ == "__main__":
    main()
