"""Experiment SV — serve-path latency: cold cache vs warm cache vs direct.

The serving claim behind `repro.serve`: once a graph is uploaded and the
result cache is warm, answering a repeat request costs a frame round trip
and a cache lookup — not a decomposition.  This experiment times the same
request set three ways:

- ``direct`` — per-request ``decompose_many()`` (serial executor), the
  cost of not having a server at all;
- ``cold`` — first pass through a freshly started server: frame + pool
  execution per request;
- ``warm`` — the same requests again: every one a memoized hit.

All three paths must produce byte-identical assignment digests (the
derandomization contract that licenses memoization), and in full mode the
warm path must sustain >= 10x the requests/sec of the direct baseline on a
>= 100k-edge graph.

The second phase times the **application serving path** (`spanner` op):
cold spanner requests execute the decomposition on the pool plus the
spanner construction server-side; warm repeats are answered from the same
result cache.  Full mode asserts warm spanner requests sustain >= 5x the
requests/sec of cold ones, and that served edge sets are bit-identical to
the local pipeline.  ``REPRO_BENCH_SMOKE=1`` (or ``--smoke``) shrinks the
workload to a seconds-fast path-exercise and skips the speedup floors.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.core.engine import decompose_many
from repro.graphs.generators import erdos_renyi
from repro.pipeline import EngineProvider
from repro.serve import ServeClient, serve_background
from repro.spanners import ldd_spanner

from common import Table, bench_scale, emit_bench_json

#: (beta, seed) request set; every entry is requested once cold, once warm.
SV_BETAS = (0.25, 0.4)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _workload():
    """(graph, seeds-per-beta) for the current mode/scale."""
    if _smoke():
        return erdos_renyi(200, 0.2, seed=0), 3
    scale = bench_scale()
    # ~128k edges * scale; n grows with scale so density stays serving-shaped.
    n = 800 * scale
    p = 0.4 / scale
    return erdos_renyi(n, p, seed=0), 8


def _percentiles_ms(latencies: list[float]) -> tuple[float, float]:
    arr = np.asarray(latencies, dtype=np.float64) * 1e3
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def test_serve_latency():
    graph, seeds_per_beta = _workload()
    configs = [
        (beta, seed)
        for beta in SV_BETAS
        for seed in range(seeds_per_beta)
    ]

    # Direct baseline: one decompose_many() per request, serial executor —
    # the per-request cost of calling the engine instead of the server.
    direct_lat: list[float] = []
    direct_arrays: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
    for beta, seed in configs:
        start = time.perf_counter()
        batch = decompose_many(
            graph, beta, seeds=[seed], executor="serial"
        )
        direct_lat.append(time.perf_counter() - start)
        decomposition = batch.results[0].decomposition
        direct_arrays[(beta, seed)] = (
            decomposition.center, decomposition.hops
        )

    with serve_background(graph, max_workers=2) as server:
        with ServeClient(*server.address) as client:
            digest = server.preloaded[0]

            def pass_over(expect_cached: bool) -> list[float]:
                latencies = []
                for beta, seed in configs:
                    start = time.perf_counter()
                    result = client.decompose(digest, beta, seed=seed)
                    latencies.append(time.perf_counter() - start)
                    assert result.cached == expect_cached, (
                        f"expected cached={expect_cached} for "
                        f"beta={beta} seed={seed}"
                    )
                    # Determinism: cold misses and warm hits are both
                    # bit-identical to the direct engine run.
                    center, hops = direct_arrays[(beta, seed)]
                    assert np.array_equal(result.center, center)
                    assert np.array_equal(result.hops, hops)
                return latencies

            cold_lat = pass_over(expect_cached=False)
            warm_lat = pass_over(expect_cached=True)
            cache_stats = client.stats()["cache"]

    assert cache_stats["hits"] >= len(configs)

    table = Table(
        f"SV: serve-path latency, n={graph.num_vertices} "
        f"m={graph.num_edges} requests={len(configs)}/pass",
        ["mode", "p50_ms", "p99_ms", "req_per_s"],
    )
    rates = {}
    report = {}
    for mode, latencies in (
        ("direct", direct_lat),
        ("cold", cold_lat),
        ("warm", warm_lat),
    ):
        p50, p99 = _percentiles_ms(latencies)
        rates[mode] = len(latencies) / sum(latencies)
        table.add(mode, p50, p99, rates[mode])
        report[mode] = {
            "p50_ms": p50, "p99_ms": p99, "req_per_s": rates[mode]
        }
    table.show()
    emit_bench_json(
        "serve",
        {
            "decompose": report,
            "workload": {
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "requests_per_pass": len(configs),
                "smoke": _smoke(),
            },
        },
    )

    if not _smoke():
        assert graph.num_edges >= 100_000
        speedup = rates["warm"] / rates["direct"]
        assert speedup >= 10.0, (
            f"warm cache hits only {speedup:.1f}x over direct "
            "decompose_many — the serving layer is not earning its keep"
        )


def test_spanner_serve_latency():
    """Application serving path: cold vs warm `spanner` op round trips."""
    graph, seeds_per_beta = _workload()
    configs = [
        (beta, seed) for beta in SV_BETAS for seed in range(seeds_per_beta)
    ]

    # Local pipeline reference for bit-identity of the served edge sets.
    local_edges = {
        (beta, seed): ldd_spanner(
            graph, beta, seed=seed, provider=EngineProvider()
        ).spanner.edge_array()
        for beta, seed in configs
    }

    with serve_background(graph, max_workers=2) as server:
        with ServeClient(*server.address) as client:
            digest = server.preloaded[0]

            def pass_over(expect_cached: bool) -> list[float]:
                latencies = []
                for beta, seed in configs:
                    start = time.perf_counter()
                    result = client.spanner(digest, beta, seed=seed)
                    latencies.append(time.perf_counter() - start)
                    assert result.cached == expect_cached, (
                        f"expected cached={expect_cached} for "
                        f"beta={beta} seed={seed}"
                    )
                    assert np.array_equal(
                        result.edges, local_edges[(beta, seed)]
                    ), "served spanner drifted from the local pipeline"
                return latencies

            cold_lat = pass_over(expect_cached=False)
            warm_lat = pass_over(expect_cached=True)
            app_stats = client.stats()["server"]

    assert app_stats["app_executions"] == len(configs)
    assert app_stats["app_requests"] == 2 * len(configs)

    table = Table(
        f"SV-APP: spanner op latency, n={graph.num_vertices} "
        f"m={graph.num_edges} requests={len(configs)}/pass",
        ["mode", "p50_ms", "p99_ms", "req_per_s"],
    )
    rates = {}
    report = {}
    for mode, latencies in (("cold", cold_lat), ("warm", warm_lat)):
        p50, p99 = _percentiles_ms(latencies)
        rates[mode] = len(latencies) / sum(latencies)
        table.add(mode, p50, p99, rates[mode])
        report[mode] = {
            "p50_ms": p50, "p99_ms": p99, "req_per_s": rates[mode]
        }
    table.show()
    emit_bench_json("serve", {"spanner": report})

    if not _smoke():
        speedup = rates["warm"] / rates["cold"]
        assert speedup >= 5.0, (
            f"warm spanner requests only {speedup:.1f}x over cold — the "
            "application serving path is not earning its keep"
        )


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    test_serve_latency()
    test_spanner_serve_latency()
