"""Experiments BD, LST, SPAN, EMB — the application-layer reproductions.

Each of the applications the paper's introduction motivates consumes the
decomposition through the public API (the pipeline layer: every
decomposition goes through a shared, memoizing
:class:`~repro.pipeline.EngineProvider`); these benches regenerate the
headline quantity of each:

- BD:   Linial–Saks blocks — count vs the ⌈log₂ m⌉ bound (paper §2);
- LST:  AKPW low-stretch trees — average stretch vs the BFS-tree baseline;
- SPAN: cluster spanners — size/stretch trade-off across β;
- EMB:  HST embeddings — expected distortion across graph families.

``REPRO_BENCH_SMOKE=1`` shrinks every family to a seconds-fast
path-exercise (the CI application-pipeline smoke job) and keeps only the
structural assertions; statistical comparisons need the full-size graphs.
"""

from __future__ import annotations

import hashlib
import os
import time

import numpy as np
import pytest

from repro.blockdecomp import block_decomposition
from repro.core.theory import blockdecomp_iteration_bound
from repro.embeddings import build_hst, hierarchical_decomposition, measure_distortion
from repro.graphs.generators import (
    erdos_renyi,
    grid_2d,
    hypercube,
    torus_2d,
)
from repro.lowstretch import akpw_spanning_tree, bfs_spanning_tree, stretch_report
from repro.pipeline import EngineProvider
from repro.spanners import ldd_spanner, measure_spanner_stretch

from common import Table, emit_bench_json

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The LP-HST ≥2× wall-clock floor is a parallel-hardware claim; below
#: this core count only the measured value is reported (same contract as
#: bench_cluster.py).
MIN_CORES_FOR_FLOOR = 6
LEVEL_PARALLEL_FLOOR = 2.0


@pytest.fixture(scope="module")
def provider():
    """One memoizing provider for the whole module — repeated
    configurations across tests are cache hits, mirroring production."""
    with EngineProvider() as prov:
        yield prov


class TestBlockDecomposition:
    def test_block_count_vs_log_bound(self):
        table = Table(
            "BD: Linial-Saks blocks vs ceil(log2 m) (beta=1/2 per round)",
            ["graph", "m", "blocks", "log2_bound", "largest_block_frac"],
        )
        families = (
            [
                ("grid 12x12", grid_2d(12, 12)),
                ("er n=120", erdos_renyi(120, 0.04, seed=1)),
            ]
            if SMOKE
            else [
                ("grid 30x30", grid_2d(30, 30)),
                ("torus 25x25", torus_2d(25, 25)),
                ("er n=600", erdos_renyi(600, 0.01, seed=1)),
            ]
        )
        for name, graph in families:
            bd = block_decomposition(graph, seed=2)
            bound = blockdecomp_iteration_bound(graph.num_edges)
            counts = bd.block_edge_counts()
            table.add(
                name,
                graph.num_edges,
                bd.num_blocks,
                bound,
                float(counts[0] / graph.num_edges),
            )
            assert bd.num_blocks <= 2 * bound
        table.show()

    def test_geometric_decay_of_block_sizes(self):
        graph = grid_2d(12, 12) if SMOKE else grid_2d(30, 30)
        bd = block_decomposition(graph, seed=3)
        counts = bd.block_edge_counts().astype(float)
        # Cumulative leftover halves (in expectation) per iteration.
        leftover = graph.num_edges - np.cumsum(counts)
        table = Table(
            "BD-decay: edges left after each block (grid 30x30)",
            ["block", "edges_in_block", "left_after"],
        )
        for i, (c, l) in enumerate(zip(counts, leftover)):
            table.add(i, int(c), int(l))
        table.show()
        mid = len(leftover) // 2
        if mid >= 1:
            assert leftover[mid] < graph.num_edges * (0.75**mid)

    def test_blockdecomp_timing(self, benchmark):
        graph = grid_2d(20, 20)
        benchmark(lambda: block_decomposition(graph, seed=0))


class TestLowStretchTrees:
    def test_stretch_vs_bfs_baseline(self, provider):
        seeds = 2 if SMOKE else 5
        table = Table(
            f"LST: AKPW vs BFS-tree average stretch ({seeds} seeds each)",
            ["graph", "akpw_mean", "bfs_mean", "akpw_max", "bfs_max"],
        )
        # Per-family acceptance factors: AKPW should match/beat BFS trees on
        # high-diameter lattices; on hypercubes BFS trees are already near
        # optimal (every vertex at distance ≤ d), so parity-with-slack is
        # the honest expectation.
        if SMOKE:
            families = [("torus 10x10", torus_2d(10, 10), None)]
        else:
            families = [
                ("torus 16x16", torus_2d(16, 16), 1.25),
                ("grid 25x25", grid_2d(25, 25), 1.3),
                ("hypercube 9", hypercube(9), 2.0),
            ]
        for name, graph, factor in families:
            a_mean, b_mean, a_max, b_max = [], [], [], []
            for seed in range(seeds):
                t1 = akpw_spanning_tree(
                    graph, beta=0.4, seed=seed, provider=provider
                ).forest
                t2 = bfs_spanning_tree(graph, seed=seed)
                r1 = stretch_report(graph, t1)
                r2 = stretch_report(graph, t2)
                a_mean.append(r1.mean)
                b_mean.append(r2.mean)
                a_max.append(r1.max)
                b_max.append(r2.max)
            table.add(
                name,
                float(np.mean(a_mean)),
                float(np.mean(b_mean)),
                float(np.mean(a_max)),
                float(np.mean(b_max)),
            )
            # AKPW must at least match the baseline on average stretch
            # (full mode only — tiny smoke graphs are too noisy).
            if factor is not None:
                assert np.mean(a_mean) <= np.mean(b_mean) * factor
        table.show()

    def test_stretch_vs_beta_tradeoff(self, provider):
        graph = torus_2d(10, 10) if SMOKE else torus_2d(16, 16)
        table = Table(
            "LST-beta: AKPW stretch and level count vs beta",
            ["beta", "levels", "mean_stretch", "max_stretch"],
        )
        for beta in (0.2, 0.4, 0.6):
            res = akpw_spanning_tree(
                graph, beta=beta, seed=7, provider=provider
            )
            rep = stretch_report(graph, res.forest)
            table.add(beta, res.num_levels, rep.mean, rep.max)
        table.show()

    def test_akpw_timing(self, benchmark):
        # Memoization disabled: the benchmark must time real levels, not
        # memo hits (the default provider would answer round 2+ from cache).
        graph = grid_2d(12, 12) if SMOKE else grid_2d(25, 25)
        with EngineProvider(memo_bytes=0) as prov:
            benchmark(
                lambda: akpw_spanning_tree(
                    graph, beta=0.4, seed=0, provider=prov
                )
            )


class TestSpanners:
    def test_size_stretch_tradeoff(self, provider):
        # Hypercube-9: m/n = 4.5, so sparsification is visible.  With
        # ln(n)/β below the diameter (small β) a single piece swallows the
        # cube and the spanner is one BFS tree — the β sweep must reach the
        # fragmenting regime (β ≥ 0.6) to trade size back for stretch.
        d = 7 if SMOKE else 9
        graph = hypercube(d)
        table = Table(
            f"SPAN: spanner size vs stretch across beta (hypercube d={d})",
            ["beta", "pieces", "size_ratio", "bound_4r+1", "measured_max", "mean"],
        )
        for beta in (0.1, 0.6, 0.9):
            res = ldd_spanner(graph, beta, seed=4, provider=provider)
            rep = measure_spanner_stretch(
                graph, res.spanner, max_sources=60, seed=2
            )
            table.add(
                beta,
                res.decomposition.num_pieces,
                res.size_ratio(),
                res.stretch_bound,
                rep.max,
                rep.mean,
            )
            assert rep.max <= res.stretch_bound
            assert res.size_ratio() < 0.5  # always well under m
        table.show()

    def test_spanner_on_grid_keeps_most_edges(self, provider):
        # Grids are already sparse: the spanner keeps ~n of ~2n edges.
        graph = grid_2d(12, 12) if SMOKE else grid_2d(30, 30)
        res = ldd_spanner(graph, 0.1, seed=3, provider=provider)
        table = Table(
            "SPAN-grid: composition (beta=0.1)",
            ["tree_edges", "bridge_edges", "total", "orig_m"],
        )
        table.add(
            res.num_tree_edges,
            res.num_bridge_edges,
            res.num_edges,
            graph.num_edges,
        )
        table.show()
        assert res.num_edges <= graph.num_edges

    def test_spanner_timing(self, benchmark):
        # Memoization disabled — time the decomposition, not a cache hit.
        graph = hypercube(6 if SMOKE else 8)
        with EngineProvider(memo_bytes=0) as prov:
            benchmark(lambda: ldd_spanner(graph, 0.2, seed=0, provider=prov))


class TestEmbeddings:
    def test_distortion_across_families(self, provider):
        table = Table(
            "EMB: HST expected distortion (hierarchical shifted LDD)",
            ["graph", "levels", "mean_ratio", "median", "contraction_frac"],
        )
        # Contraction thresholds per family: on low-diameter expanders most
        # distances are near the diameter, so the simplified top-down
        # hierarchy contracts more pairs than on lattices (where it is the
        # FRT-style regime).  EXPERIMENTS.md records this deviation.
        if SMOKE:
            families = [
                ("grid 10x10", grid_2d(10, 10), 0.4),
                ("torus 8x8", torus_2d(8, 8), 0.6),
            ]
        else:
            families = [
                ("grid 20x20", grid_2d(20, 20), 0.25),
                ("er n=300", erdos_renyi(300, 0.02, seed=4), 0.5),
                ("hypercube 8", hypercube(8), 0.5),
            ]
        for name, graph, contraction_limit in families:
            h = hierarchical_decomposition(graph, seed=5, provider=provider)
            rep = measure_distortion(
                graph, build_hst(h), num_sources=6, seed=6
            )
            table.add(
                name,
                h.num_levels,
                rep.mean_ratio,
                rep.median_ratio,
                rep.contraction_fraction,
            )
            assert rep.mean_ratio >= 1.0
            assert rep.contraction_fraction < contraction_limit
        table.show()

    def test_hierarchy_timing(self, benchmark):
        # Memoization disabled — time the recursion, not cache hits.
        graph = grid_2d(8, 8) if SMOKE else grid_2d(15, 15)
        with EngineProvider(memo_bytes=0) as prov:
            benchmark(
                lambda: hierarchical_decomposition(
                    graph, seed=0, provider=prov
                )
            )


class TestLevelParallelCluster:
    def test_level_parallel_hst_vs_sequential_over_cluster(self):
        """Experiment LP-HST: level-parallel hierarchy construction over a
        2-shard cluster vs sequential per-piece submission.

        Both runs issue the *same* requests against identical fresh
        topologies (shard caches and provider memos disabled, so every
        piece is computed, not recalled) and must be digest-identical to
        the serial engine.  The claim under test is wall-clock: batching
        a level's pieces through the pipelined async client overlaps
        round trips and fans the pieces across the shards' worker pools,
        where sequential submission serialises RPC latency and compute.
        The measured speedup is always emitted to
        ``BENCH_applications.json``; the ≥{floor}× floor is asserted only
        on ≥{cores}-core machines (a parallel-hardware claim, and CI
        runners routinely have 2).
        """
        from repro.cluster import ClusterProvider, cluster_background

        cores = os.cpu_count() or 1
        graph = grid_2d(16, 16) if SMOKE else grid_2d(64, 64)
        seed = 17
        workers_per_shard = 3 if cores >= MIN_CORES_FOR_FLOOR else 2

        def labels_digest(hierarchy) -> str:
            sha = hashlib.sha256()
            for level in hierarchy.labels:
                sha.update(np.ascontiguousarray(level).tobytes())
            return sha.hexdigest()

        with EngineProvider() as engine:
            expected = labels_digest(
                hierarchical_decomposition(graph, seed=seed, provider=engine)
            )

        timings: dict[str, float] = {}
        with cluster_background(
            num_shards=2, max_workers=workers_per_shard, cache_bytes=0
        ) as router:
            for label, max_concurrent in (
                ("sequential", 1),
                ("level_parallel", None),
            ):
                with ClusterProvider(
                    address=router.address, memo_bytes=0
                ) as provider:
                    start = time.perf_counter()
                    hierarchy = hierarchical_decomposition(
                        graph, seed=seed, provider=provider,
                        max_concurrent=max_concurrent,
                    )
                    timings[label] = time.perf_counter() - start
                assert labels_digest(hierarchy) == expected, (
                    f"{label} cluster hierarchy drifted from the serial "
                    f"engine"
                )

        speedup = timings["sequential"] / timings["level_parallel"]
        table = Table(
            "LP-HST: level-parallel vs sequential HST over a 2-shard "
            "cluster (digest-checked against the engine)",
            ["variant", "wall_s", "speedup_vs_sequential"],
        )
        table.add("sequential", f"{timings['sequential']:.3f}", "1.00")
        table.add(
            "level_parallel", f"{timings['level_parallel']:.3f}",
            f"{speedup:.2f}",
        )
        table.show()
        emit_bench_json(
            "applications",
            {
                "level_parallel_hst": {
                    "graph": f"grid {graph.num_vertices} vertices",
                    "num_shards": 2,
                    "workers_per_shard": workers_per_shard,
                    "cores": cores,
                    "smoke": SMOKE,
                    "sequential_s": timings["sequential"],
                    "level_parallel_s": timings["level_parallel"],
                    "speedup": speedup,
                    "floor": LEVEL_PARALLEL_FLOOR,
                    "floor_asserted": (
                        not SMOKE and cores >= MIN_CORES_FOR_FLOOR
                    ),
                }
            },
        )
        if not SMOKE and cores >= MIN_CORES_FOR_FLOOR:
            assert speedup >= LEVEL_PARALLEL_FLOOR, (
                f"level-parallel HST speedup {speedup:.2f}x under the "
                f"{LEVEL_PARALLEL_FLOOR}x floor on {cores} cores"
            )


class TestPipelineReuse:
    def test_provider_memo_saw_reuse(self, provider):
        """The pipeline's economic claim: repeated application builds and
        cross-level hierarchy pieces reuse memoized decompositions.

        Self-contained — it drives known repeated configurations on the
        shared provider and measures the hit delta, so it holds under
        ``-k``/xdist selection just as well as after the full module."""
        before = provider.stats()
        graph = torus_2d(8, 8) if SMOKE else torus_2d(16, 16)
        # Two identical AKPW builds: the second replays every level.
        akpw_spanning_tree(graph, beta=0.4, seed=21, provider=provider)
        akpw_spanning_tree(graph, beta=0.4, seed=21, provider=provider)
        # One hierarchy: pieces stable across levels hit the memo too.
        hierarchical_decomposition(graph, seed=21, provider=provider)
        after = provider.stats()
        requests = after["requests"] - before["requests"]
        hits = after["memo_hits"] - before["memo_hits"]
        table = Table(
            "PIPE: provider reuse across repeated application builds",
            ["requests", "memo_hits", "hit_rate"],
        )
        table.add(
            requests, hits, f"{hits / requests:.1%}" if requests else "n/a"
        )
        table.show()
        assert requests > 0
        assert hits > 0, "no decomposition reuse across application builds"
