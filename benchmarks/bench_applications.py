"""Experiments BD, LST, SPAN, EMB — the application-layer reproductions.

Each of the applications the paper's introduction motivates consumes the
decomposition through the public API; these benches regenerate the headline
quantity of each:

- BD:   Linial–Saks blocks — count vs the ⌈log₂ m⌉ bound (paper §2);
- LST:  AKPW low-stretch trees — average stretch vs the BFS-tree baseline;
- SPAN: cluster spanners — size/stretch trade-off across β;
- EMB:  HST embeddings — expected distortion across graph families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blockdecomp import block_decomposition
from repro.core.theory import blockdecomp_iteration_bound
from repro.embeddings import build_hst, hierarchical_decomposition, measure_distortion
from repro.graphs.generators import (
    erdos_renyi,
    grid_2d,
    hypercube,
    torus_2d,
)
from repro.lowstretch import akpw_spanning_tree, bfs_spanning_tree, stretch_report
from repro.spanners import ldd_spanner, measure_spanner_stretch

from common import Table


class TestBlockDecomposition:
    def test_block_count_vs_log_bound(self):
        table = Table(
            "BD: Linial-Saks blocks vs ceil(log2 m) (beta=1/2 per round)",
            ["graph", "m", "blocks", "log2_bound", "largest_block_frac"],
        )
        for name, graph in [
            ("grid 30x30", grid_2d(30, 30)),
            ("torus 25x25", torus_2d(25, 25)),
            ("er n=600", erdos_renyi(600, 0.01, seed=1)),
        ]:
            bd = block_decomposition(graph, seed=2)
            bound = blockdecomp_iteration_bound(graph.num_edges)
            counts = bd.block_edge_counts()
            table.add(
                name,
                graph.num_edges,
                bd.num_blocks,
                bound,
                float(counts[0] / graph.num_edges),
            )
            assert bd.num_blocks <= 2 * bound
        table.show()

    def test_geometric_decay_of_block_sizes(self):
        graph = grid_2d(30, 30)
        bd = block_decomposition(graph, seed=3)
        counts = bd.block_edge_counts().astype(float)
        # Cumulative leftover halves (in expectation) per iteration.
        leftover = graph.num_edges - np.cumsum(counts)
        table = Table(
            "BD-decay: edges left after each block (grid 30x30)",
            ["block", "edges_in_block", "left_after"],
        )
        for i, (c, l) in enumerate(zip(counts, leftover)):
            table.add(i, int(c), int(l))
        table.show()
        mid = len(leftover) // 2
        if mid >= 1:
            assert leftover[mid] < graph.num_edges * (0.75**mid)

    def test_blockdecomp_timing(self, benchmark):
        graph = grid_2d(20, 20)
        benchmark(lambda: block_decomposition(graph, seed=0))


class TestLowStretchTrees:
    def test_stretch_vs_bfs_baseline(self):
        table = Table(
            "LST: AKPW vs BFS-tree average stretch (5 seeds each)",
            ["graph", "akpw_mean", "bfs_mean", "akpw_max", "bfs_max"],
        )
        # Per-family acceptance factors: AKPW should match/beat BFS trees on
        # high-diameter lattices; on hypercubes BFS trees are already near
        # optimal (every vertex at distance ≤ d), so parity-with-slack is
        # the honest expectation.
        factors = {"torus 16x16": 1.25, "grid 25x25": 1.3, "hypercube 9": 2.0}
        for name, graph in [
            ("torus 16x16", torus_2d(16, 16)),
            ("grid 25x25", grid_2d(25, 25)),
            ("hypercube 9", hypercube(9)),
        ]:
            a_mean, b_mean, a_max, b_max = [], [], [], []
            for seed in range(5):
                t1 = akpw_spanning_tree(graph, beta=0.4, seed=seed).forest
                t2 = bfs_spanning_tree(graph, seed=seed)
                r1 = stretch_report(graph, t1)
                r2 = stretch_report(graph, t2)
                a_mean.append(r1.mean)
                b_mean.append(r2.mean)
                a_max.append(r1.max)
                b_max.append(r2.max)
            table.add(
                name,
                float(np.mean(a_mean)),
                float(np.mean(b_mean)),
                float(np.mean(a_max)),
                float(np.mean(b_max)),
            )
            # AKPW must at least match the baseline on average stretch.
            assert np.mean(a_mean) <= np.mean(b_mean) * factors[name]
        table.show()

    def test_stretch_vs_beta_tradeoff(self):
        graph = torus_2d(16, 16)
        table = Table(
            "LST-beta: AKPW stretch and level count vs beta (torus 16x16)",
            ["beta", "levels", "mean_stretch", "max_stretch"],
        )
        for beta in (0.2, 0.4, 0.6):
            res = akpw_spanning_tree(graph, beta=beta, seed=7)
            rep = stretch_report(graph, res.forest)
            table.add(beta, res.num_levels, rep.mean, rep.max)
        table.show()

    def test_akpw_timing(self, benchmark):
        graph = grid_2d(25, 25)
        benchmark(lambda: akpw_spanning_tree(graph, beta=0.4, seed=0))


class TestSpanners:
    def test_size_stretch_tradeoff(self):
        # Hypercube-9: m/n = 4.5, so sparsification is visible.  With
        # ln(n)/β below the diameter (small β) a single piece swallows the
        # cube and the spanner is one BFS tree — the β sweep must reach the
        # fragmenting regime (β ≥ 0.6) to trade size back for stretch.
        graph = hypercube(9)
        table = Table(
            "SPAN: spanner size vs stretch across beta (hypercube d=9)",
            ["beta", "pieces", "size_ratio", "bound_4r+1", "measured_max", "mean"],
        )
        for beta in (0.1, 0.6, 0.9):
            res = ldd_spanner(graph, beta, seed=4)
            rep = measure_spanner_stretch(
                graph, res.spanner, max_sources=60, seed=2
            )
            table.add(
                beta,
                res.decomposition.num_pieces,
                res.size_ratio(),
                res.stretch_bound,
                rep.max,
                rep.mean,
            )
            assert rep.max <= res.stretch_bound
            assert res.size_ratio() < 0.5  # always well under m
        table.show()

    def test_spanner_on_grid_keeps_most_edges(self):
        # Grids are already sparse: the spanner keeps ~n of ~2n edges.
        graph = grid_2d(30, 30)
        res = ldd_spanner(graph, 0.1, seed=3)
        table = Table(
            "SPAN-grid: composition (grid 30x30, beta=0.1)",
            ["tree_edges", "bridge_edges", "total", "orig_m"],
        )
        table.add(
            res.num_tree_edges,
            res.num_bridge_edges,
            res.num_edges,
            graph.num_edges,
        )
        table.show()
        assert res.num_edges <= graph.num_edges

    def test_spanner_timing(self, benchmark):
        graph = hypercube(8)
        benchmark(lambda: ldd_spanner(graph, 0.2, seed=0))


class TestEmbeddings:
    def test_distortion_across_families(self):
        table = Table(
            "EMB: HST expected distortion (hierarchical shifted LDD)",
            ["graph", "levels", "mean_ratio", "median", "contraction_frac"],
        )
        # Contraction thresholds per family: on low-diameter expanders most
        # distances are near the diameter, so the simplified top-down
        # hierarchy contracts more pairs than on lattices (where it is the
        # FRT-style regime).  EXPERIMENTS.md records this deviation.
        contraction_limits = {
            "grid 20x20": 0.25,
            "er n=300": 0.5,
            "hypercube 8": 0.5,
        }
        for name, graph in [
            ("grid 20x20", grid_2d(20, 20)),
            ("er n=300", erdos_renyi(300, 0.02, seed=4)),
            ("hypercube 8", hypercube(8)),
        ]:
            h = hierarchical_decomposition(graph, seed=5)
            rep = measure_distortion(
                graph, build_hst(h), num_sources=6, seed=6
            )
            table.add(
                name,
                h.num_levels,
                rep.mean_ratio,
                rep.median_ratio,
                rep.contraction_fraction,
            )
            assert rep.mean_ratio >= 1.0
            assert rep.contraction_fraction < contraction_limits[name]
        table.show()

    def test_hierarchy_timing(self, benchmark):
        graph = grid_2d(15, 15)
        benchmark(lambda: hierarchical_decomposition(graph, seed=0))
