"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import common` work when pytest is invoked from the repo root.
sys.path.insert(0, str(Path(__file__).parent))
