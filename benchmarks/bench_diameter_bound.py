"""Experiment DIA — the (β, O(log n/β)) strong-diameter guarantee.

Per run, every piece radius is bounded by δ_max (deterministically, given
the shifts), and δ_max ≤ (d+1)·ln n/β w.h.p. — so measured radii must sit
below the w.h.p. curve, and strong diameters below twice it.  The report
also shows the *effective constant* radius·β/ln n, which the paper's theory
puts at O(1) and practice puts well under it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.core.theory import whp_radius_bound
from repro.core.verify import strong_diameters
from repro.graphs.generators import (
    erdos_renyi,
    grid_2d,
    random_regular,
    torus_2d,
)

from common import Table, run_batch

FAMILIES = {
    "grid": lambda: grid_2d(40, 40),
    "torus": lambda: torus_2d(30, 30),
    "er": lambda: erdos_renyi(900, 0.005, seed=5),
    "regular": lambda: random_regular(900, 4, seed=6),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_radius_within_whp_bound(family):
    graph = FAMILIES[family]()
    n = graph.num_vertices
    trials = 8
    table = Table(
        f"DIA: piece radius vs (d+1)ln(n)/beta ({family}, n={n})",
        ["beta", "max_radius", "delta_max", "whp_bound", "radius*beta/ln_n"],
    )
    for beta in (0.05, 0.1, 0.2):
        batch = run_batch(graph, beta, method="bfs", seeds=trials)
        for run in batch.runs:
            # per-run certificate
            assert (
                run.result.decomposition.max_radius()
                <= run.result.trace.delta_max
            )
        max_radius = int(batch.values("max_radius").max())
        max_delta = max(run.result.trace.delta_max for run in batch.runs)
        bound = whp_radius_bound(n, beta, d=1.0)
        table.add(
            beta,
            max_radius,
            max_delta,
            bound,
            max_radius * beta / np.log(n),
        )
        assert max_radius <= bound
    table.show()


def test_strong_diameter_at_most_twice_radius():
    """Definition 1.1's diameter side, with exact per-piece diameters."""
    graph = grid_2d(25, 25)
    table = Table(
        "DIA-exact: exact strong diameter vs radius (grid 25x25)",
        ["beta", "max_radius", "max_diameter", "diam/rad"],
    )
    for beta in (0.1, 0.3):
        d, _ = partition_bfs(graph, beta, seed=3)
        diams = strong_diameters(d, exact=True)
        radius = d.max_radius()
        diameter = int(diams.max())
        table.add(beta, radius, diameter, diameter / max(radius, 1))
        assert diameter <= 2 * radius
    table.show()


def test_radius_measurement_throughput(benchmark):
    graph = grid_2d(50, 50)
    d, _ = partition_bfs(graph, 0.1, seed=0)
    benchmark(d.max_radius)
