"""Experiment L44 — Lemma 4.4: the shifted-minimum gap probability.

For arbitrary values ``d_1 ≤ … ≤ d_n`` and i.i.d. ``δ_i ~ Exp(β)``, the
probability that the smallest and second-smallest of ``d_i − δ_i`` are
within ``c`` is at most ``1 − exp(−βc) < βc``.

Measured two ways:

1. **synthetic**: adversarial d-vectors (all-equal, linear ramp, clustered)
   — the bound must hold for *every* input;
2. **on-graph**: the per-edge cut frequency of the actual decomposition vs
   ``β`` (the Corollary 4.5 route to the same quantity).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.core.theory import cut_probability_bound
from repro.graphs.generators import grid_2d

from common import Table


def _gap_within_c_frequency(
    d: np.ndarray, beta: float, c: float, trials: int, seed: int
) -> float:
    rng = np.random.default_rng(seed)
    n = d.shape[0]
    deltas = rng.exponential(1.0 / beta, size=(trials, n))
    shifted = d[None, :] - deltas
    part = np.partition(shifted, 1, axis=1)
    gaps = part[:, 1] - part[:, 0]
    return float((gaps <= c).mean())


@pytest.mark.parametrize(
    "name,d_vector",
    [
        ("all-equal", np.zeros(40)),
        ("linear-ramp", np.arange(40, dtype=np.float64)),
        ("two-clusters", np.concatenate([np.zeros(20), np.full(20, 30.0)])),
        ("single-outlier", np.concatenate([np.zeros(39), [100.0]])),
    ],
)
def test_gap_probability_bounded_synthetic(name, d_vector):
    trials = 30_000
    table = Table(
        f"L44: Pr[gap <= c] vs 1-exp(-beta*c), d-vector = {name}",
        ["beta", "c", "measured", "bound"],
    )
    for beta in (0.05, 0.2, 0.5):
        for c in (0.5, 1.0, 2.0):
            measured = _gap_within_c_frequency(
                d_vector, beta, c, trials, seed=hash((name, beta, c)) % 2**31
            )
            bound = cut_probability_bound(beta, c)
            table.add(beta, c, measured, bound)
            assert measured <= bound * 1.15 + 0.01
    table.show()


def test_edge_cut_probability_on_graph():
    """Corollary 4.5 via repeated decompositions: per-edge cut frequency."""
    graph = grid_2d(40, 40)
    trials = 30
    table = Table(
        "L44-graph: edge cut frequency vs beta (grid 40x40)",
        ["beta", "mean_cut_frac", "bound 1-exp(-beta)", "ratio"],
    )
    for beta in (0.02, 0.05, 0.1, 0.2):
        fracs = [
            partition_bfs(graph, beta, seed=s)[0].cut_fraction()
            for s in range(trials)
        ]
        mean = float(np.mean(fracs))
        bound = cut_probability_bound(beta, 1.0)
        table.add(beta, mean, bound, mean / bound)
        assert mean <= bound * 1.2 + 0.005
    table.show()


def test_gap_simulation_throughput(benchmark):
    d = np.arange(100, dtype=np.float64)
    benchmark(lambda: _gap_within_c_frequency(d, 0.1, 1.0, 5000, seed=0))
