"""Experiment SOLVE — the SDD-solver application ([9, 11]).

The end-to-end payoff the paper's introduction promises: decomposition →
low-stretch tree → (ultrasparsifier) preconditioner → fewer PCG iterations.
Reported per preconditioner: iterations to 1e-8, plus the tree's total
stretch (the condition-number proxy the theory bounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, grid_2d, torus_2d
from repro.solvers import (
    LaplacianSolver,
    PRECONDITIONERS,
    random_zero_sum_rhs,
    residual_norm,
)

from common import Table


def test_preconditioner_comparison():
    table = Table(
        "SOLVE: PCG iterations to rtol=1e-8 by preconditioner",
        ["graph", "precond", "iterations", "converged", "tree_stretch"],
    )
    iteration_record: dict[tuple[str, str], int] = {}
    for name, graph in [
        ("grid 30x30", grid_2d(30, 30)),
        ("torus 24x24", torus_2d(24, 24)),
        ("er n=800", erdos_renyi(800, 0.006, seed=1)),
    ]:
        b = random_zero_sum_rhs(graph, seed=2)
        for pc in PRECONDITIONERS:
            solver = LaplacianSolver(graph, preconditioner=pc, seed=3)
            res = solver.solve(b, rtol=1e-8, max_iterations=4000)
            iteration_record[(name, pc)] = res.num_iterations
            table.add(
                name,
                pc,
                res.num_iterations,
                res.converged,
                solver.stats.tree_total_stretch,
            )
            assert res.converged, (name, pc)
            assert residual_norm(solver.laplacian, res.x, b) < 1e-7
    table.show()
    # The paper-pipeline preconditioner must beat no preconditioning on the
    # boundary-dominated grid (κ ~ n); on the torus and the ER expander
    # plain CG already converges in ~50 iterations (small κ), so parity is
    # the honest expectation there.  bench `SOLVE-scaling` below shows the
    # advantage growing with size — the asymptotic claim.
    assert (
        iteration_record[("grid 30x30", "ultrasparse")]
        < iteration_record[("grid 30x30", "none")]
    )
    for name in ("torus 24x24", "er n=800"):
        assert (
            iteration_record[(name, "ultrasparse")]
            <= iteration_record[(name, "none")] + 5
        )


def test_iterations_scale_with_sqrt_condition():
    """Unpreconditioned CG iterations grow with grid side (κ ~ n); the
    ultrasparsifier flattens that growth."""
    table = Table(
        "SOLVE-scaling: iterations vs grid side",
        ["side", "none", "ultrasparse", "ratio"],
    )
    ratios = []
    for side in (16, 24, 32, 48):
        graph = grid_2d(side, side)
        b = random_zero_sum_rhs(graph, seed=4)
        it_none = (
            LaplacianSolver(graph, preconditioner="none")
            .solve(b, rtol=1e-8, max_iterations=6000)
            .num_iterations
        )
        it_ultra = (
            LaplacianSolver(graph, preconditioner="ultrasparse", seed=5)
            .solve(b, rtol=1e-8, max_iterations=6000)
            .num_iterations
        )
        ratios.append(it_none / max(it_ultra, 1))
        table.add(side, it_none, it_ultra, it_none / max(it_ultra, 1))
    table.show()
    # The advantage must grow (or at least persist) with size.
    assert ratios[-1] >= ratios[0] * 0.8
    assert ratios[-1] > 1.5


@pytest.mark.parametrize("pc", ["ultrasparse", "jacobi"])
def test_solve_timing(benchmark, pc):
    graph = grid_2d(24, 24)
    solver = LaplacianSolver(graph, preconditioner=pc, seed=0)
    b = random_zero_sum_rhs(graph, seed=1)
    benchmark(lambda: solver.solve(b, rtol=1e-6))
