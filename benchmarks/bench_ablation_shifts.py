"""Experiment ABL — ablations on the algorithm's two random ingredients.

1. **Shift distribution**: exponential (the paper) vs uniform (the [9]
   lineage).  At matched β the exponential version must win on the
   cut-quality-per-diameter trade-off — the paper's §3 justification for
   the distribution choice.
2. **Tie-break mechanism**: fractional parts vs explicit random permutation
   (§5).  These must be statistically indistinguishable — the §5 claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_bfs import partition_bfs
from repro.core.ldd_uniform import partition_uniform
from repro.graphs.generators import grid_2d, random_regular

from common import Table, mean_and_sem


def test_exponential_beats_uniform_shifts():
    graph = grid_2d(40, 40)
    trials = 8
    table = Table(
        "ABL-dist: exponential vs uniform shifts (grid 40x40)",
        ["beta", "exp_cut", "uni_cut", "exp_rad", "uni_rad"],
    )
    for beta in (0.05, 0.1, 0.2):
        e_cut, u_cut, e_rad, u_rad = [], [], [], []
        for seed in range(trials):
            d_e, _ = partition_bfs(graph, beta, seed=seed)
            d_u, _ = partition_uniform(graph, beta, seed=seed)
            e_cut.append(d_e.cut_fraction())
            u_cut.append(d_u.cut_fraction())
            e_rad.append(d_e.max_radius())
            u_rad.append(d_u.max_radius())
        table.add(
            beta,
            float(np.mean(e_cut)),
            float(np.mean(u_cut)),
            float(np.mean(e_rad)),
            float(np.mean(u_rad)),
        )
        # Uniform shifts pay more cut at comparable-or-smaller diameter.
        assert np.mean(u_cut) > np.mean(e_cut)
    table.show()


def test_fractional_and_permutation_statistically_close():
    """§5: permutation tie-breaks change nothing statistically."""
    graph = random_regular(800, 4, seed=0)
    beta = 0.15
    trials = 12
    frac_cuts, perm_cuts = [], []
    for seed in range(trials):
        d_f, _ = partition_bfs(graph, beta, seed=seed, tie_break="fractional")
        d_p, _ = partition_bfs(graph, beta, seed=seed, tie_break="permutation")
        frac_cuts.append(d_f.cut_fraction())
        perm_cuts.append(d_p.cut_fraction())
    f_mean, f_sem = mean_and_sem(frac_cuts)
    p_mean, p_sem = mean_and_sem(perm_cuts)
    table = Table(
        "ABL-tiebreak: fractional vs permutation (4-regular n=800, beta=0.15)",
        ["mode", "cut_frac", "sem"],
    )
    table.add("fractional", f_mean, f_sem)
    table.add("permutation", p_mean, p_sem)
    table.show()
    # Means within ~4 joint standard errors.
    joint = np.hypot(f_sem, p_sem)
    assert abs(f_mean - p_mean) <= 4 * joint + 0.01


def test_quantile_variant_matches_iid_statistics():
    """ABL-quantile: §5's "shifts from permutation positions" suggestion.

    The paper: "the slight changes in distributions could be accounted for
    using a more intricate analysis, but might be more easily studied
    empirically."  Empirically: at matched (graph, β), the stratified-
    quantile variant reproduces the i.i.d. version's cut fraction and
    radius within sampling noise, while consuming only one permutation of
    randomness.
    """
    from repro.core.partition import partition

    graph = grid_2d(40, 40)
    table = Table(
        "ABL-quantile: iid exponential vs quantile-by-rank shifts (grid 40x40)",
        ["beta", "iid_cut", "qtl_cut", "iid_rad", "qtl_rad"],
    )
    for beta in (0.05, 0.1, 0.2):
        iid_cut, qtl_cut, iid_rad, qtl_rad = [], [], [], []
        for seed in range(8):
            d_i = partition(graph, beta, method="bfs", seed=seed).decomposition
            d_q = partition(
                graph, beta, method="quantile", seed=seed
            ).decomposition
            iid_cut.append(d_i.cut_fraction())
            qtl_cut.append(d_q.cut_fraction())
            iid_rad.append(d_i.max_radius())
            qtl_rad.append(d_q.max_radius())
        table.add(
            beta,
            float(np.mean(iid_cut)),
            float(np.mean(qtl_cut)),
            float(np.mean(iid_rad)),
            float(np.mean(qtl_rad)),
        )
        assert abs(np.mean(iid_cut) - np.mean(qtl_cut)) < 0.03
    table.show()


def test_uniform_timing(benchmark):
    graph = grid_2d(30, 30)
    benchmark(lambda: partition_uniform(graph, 0.1, seed=0))
