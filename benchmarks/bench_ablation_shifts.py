"""Experiment ABL — ablations on the algorithm's two random ingredients.

1. **Shift distribution**: exponential (the paper) vs uniform (the [9]
   lineage).  At matched β the exponential version must win on the
   cut-quality-per-diameter trade-off — the paper's §3 justification for
   the distribution choice.
2. **Tie-break mechanism**: fractional parts vs explicit random permutation
   (§5).  These must be statistically indistinguishable — the §5 claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ldd_uniform import partition_uniform
from repro.graphs.generators import grid_2d, random_regular

from common import Table, mean_and_sem, run_batch


def test_exponential_beats_uniform_shifts():
    graph = grid_2d(40, 40)
    trials = 8
    table = Table(
        "ABL-dist: exponential vs uniform shifts (grid 40x40)",
        ["beta", "exp_cut", "uni_cut", "exp_rad", "uni_rad"],
    )
    for beta in (0.05, 0.1, 0.2):
        exp_batch = run_batch(graph, beta, method="bfs", seeds=trials)
        uni_batch = run_batch(graph, beta, method="uniform", seeds=trials)
        e_cut = exp_batch.values("cut_fraction")
        u_cut = uni_batch.values("cut_fraction")
        table.add(
            beta,
            float(e_cut.mean()),
            float(u_cut.mean()),
            float(exp_batch.values("max_radius").mean()),
            float(uni_batch.values("max_radius").mean()),
        )
        # Uniform shifts pay more cut at comparable-or-smaller diameter.
        assert u_cut.mean() > e_cut.mean()
    table.show()


def test_fractional_and_permutation_statistically_close():
    """§5: permutation tie-breaks change nothing statistically."""
    graph = random_regular(800, 4, seed=0)
    beta = 0.15
    trials = 12
    frac_cuts = run_batch(
        graph, beta, method="bfs", seeds=trials, tie_break="fractional"
    ).values("cut_fraction")
    perm_cuts = run_batch(
        graph, beta, method="permutation", seeds=trials
    ).values("cut_fraction")
    f_mean, f_sem = mean_and_sem(list(frac_cuts))
    p_mean, p_sem = mean_and_sem(list(perm_cuts))
    table = Table(
        "ABL-tiebreak: fractional vs permutation (4-regular n=800, beta=0.15)",
        ["mode", "cut_frac", "sem"],
    )
    table.add("fractional", f_mean, f_sem)
    table.add("permutation", p_mean, p_sem)
    table.show()
    # Means within ~4 joint standard errors.
    joint = np.hypot(f_sem, p_sem)
    assert abs(f_mean - p_mean) <= 4 * joint + 0.01


def test_quantile_variant_matches_iid_statistics():
    """ABL-quantile: §5's "shifts from permutation positions" suggestion.

    The paper: "the slight changes in distributions could be accounted for
    using a more intricate analysis, but might be more easily studied
    empirically."  Empirically: at matched (graph, β), the stratified-
    quantile variant reproduces the i.i.d. version's cut fraction and
    radius within sampling noise, while consuming only one permutation of
    randomness.
    """
    graph = grid_2d(40, 40)
    table = Table(
        "ABL-quantile: iid exponential vs quantile-by-rank shifts (grid 40x40)",
        ["beta", "iid_cut", "qtl_cut", "iid_rad", "qtl_rad"],
    )
    for beta in (0.05, 0.1, 0.2):
        iid = run_batch(graph, beta, method="bfs", seeds=8)
        qtl = run_batch(graph, beta, method="quantile", seeds=8)
        iid_cut = iid.values("cut_fraction")
        qtl_cut = qtl.values("cut_fraction")
        table.add(
            beta,
            float(iid_cut.mean()),
            float(qtl_cut.mean()),
            float(iid.values("max_radius").mean()),
            float(qtl.values("max_radius").mean()),
        )
        assert abs(iid_cut.mean() - qtl_cut.mean()) < 0.03
    table.show()


def test_uniform_timing(benchmark):
    graph = grid_2d(30, 30)
    benchmark(lambda: partition_uniform(graph, 0.1, seed=0))
